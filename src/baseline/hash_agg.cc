#include "baseline/hash_agg.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <new>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/memory_tracker.h"
#include "storage/batch.h"
#include "vector/selection_vector.h"

namespace bipie {

namespace {

// Open-addressing hash table from (up to two) int64 group keys to a dense
// slot id. Linear probing, power-of-two capacity.
class GroupHashTable {
 public:
  explicit GroupHashTable(size_t initial_capacity = 64) {
    capacity_ = initial_capacity;
    slots_.assign(capacity_, kEmpty);
    keys_.reserve(64);
  }

  // Returns the dense slot for key, inserting if new.
  uint32_t Probe(int64_t k0, int64_t k1) {
    for (;;) {
      size_t pos = Hash(k0, k1) & (capacity_ - 1);
      for (;;) {
        const uint32_t slot = slots_[pos];
        if (slot == kEmpty) {
          if (keys_.size() * 2 >= capacity_) break;  // grow then retry
          const uint32_t id = static_cast<uint32_t>(keys_.size());
          keys_.push_back({k0, k1});
          slots_[pos] = id;
          return id;
        }
        if (keys_[slot].first == k0 && keys_[slot].second == k1) {
          return slot;
        }
        pos = (pos + 1) & (capacity_ - 1);
      }
      Grow();
    }
  }

  size_t size() const { return keys_.size(); }
  const std::pair<int64_t, int64_t>& key(uint32_t slot) const {
    return keys_[slot];
  }

  // Heap footprint, for MemoryReservation accounting (std::vector growth
  // is invisible to the AlignedBuffer tracker path).
  size_t MemoryBytes() const {
    return slots_.capacity() * sizeof(uint32_t) +
           keys_.capacity() * sizeof(keys_[0]);
  }

 private:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;

  static uint64_t Hash(int64_t k0, int64_t k1) {
    uint64_t h = static_cast<uint64_t>(k0) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<uint64_t>(k1) + 0x9E3779B97F4A7C15ULL + (h << 6) +
         (h >> 2);
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return h;
  }

  void Grow() {
    capacity_ *= 2;
    slots_.assign(capacity_, kEmpty);
    for (uint32_t id = 0; id < keys_.size(); ++id) {
      size_t pos = Hash(keys_[id].first, keys_[id].second) & (capacity_ - 1);
      while (slots_[pos] != kEmpty) pos = (pos + 1) & (capacity_ - 1);
      slots_[pos] = id;
    }
  }

  size_t capacity_;
  std::vector<uint32_t> slots_;
  std::vector<std::pair<int64_t, int64_t>> keys_;
};

Result<QueryResult> ExecuteQueryHashAggImpl(const Table& table,
                                            const QuerySpec& query,
                                            QueryContext* context) {
  std::vector<int> group_cols;
  for (const std::string& name : query.group_by) {
    const int idx = table.FindColumn(name);
    if (idx < 0) return Status::InvalidArgument("unknown column: " + name);
    group_cols.push_back(idx);
  }
  if (group_cols.size() > 2) {
    return Status::NotSupported("hash baseline supports <= 2 group columns");
  }
  std::vector<int> filter_cols;
  for (const ColumnPredicate& pred : query.filters) {
    const int idx = table.FindColumn(pred.column_name());
    if (idx < 0) {
      return Status::InvalidArgument("unknown column: " + pred.column_name());
    }
    filter_cols.push_back(idx);
  }
  const size_t num_specs = query.aggregates.size();
  std::vector<int> agg_cols(num_specs, -1);
  for (size_t a = 0; a < num_specs; ++a) {
    const AggregateSpec& spec = query.aggregates[a];
    if (spec.kind == AggregateSpec::Kind::kSum ||
        spec.kind == AggregateSpec::Kind::kAvg ||
        spec.kind == AggregateSpec::Kind::kMin ||
        spec.kind == AggregateSpec::Kind::kMax) {
      agg_cols[a] = table.FindColumn(spec.column);
      if (agg_cols[a] < 0) {
        return Status::InvalidArgument("unknown column: " + spec.column);
      }
    }
  }

  std::map<std::vector<GroupValue>, ResultRow> merged;

  AlignedBuffer sel_buf, sel_tmp;
  std::vector<AlignedBuffer> decoded(table.num_columns());
  std::vector<std::vector<int64_t>> expr_out(num_specs);

  for (size_t s = 0; s < table.num_segments(); ++s) {
    const Segment& segment = table.segment(s);
    if (segment.num_rows() == 0) continue;

    GroupHashTable groups;
    std::vector<uint64_t> counts;
    std::vector<int64_t> sums;  // [slot * num_specs + a]
    // Per-segment charge for the aggregation state (hash table, counts,
    // sums); re-checked per batch so unbounded group growth hits the
    // query's limit within one batch.
    MemoryReservation reservation;
    const bool segment_group_strings =
        !group_cols.empty() &&
        segment.column(group_cols[0]).type() == ColumnType::kString;
    (void)segment_group_strings;

    // Which columns need decoding per batch.
    std::vector<bool> needed(table.num_columns(), false);
    for (int c : group_cols) needed[c] = true;
    for (int c : agg_cols) {
      if (c >= 0) needed[c] = true;
    }
    for (size_t a = 0; a < num_specs; ++a) {
      if (query.aggregates[a].kind == AggregateSpec::Kind::kSumExpr) {
        std::vector<int> cols;
        query.aggregates[a].expr->CollectColumns(&cols);
        for (int c : cols) needed[c] = true;
      }
    }

    BatchCursor cursor(segment);
    BatchView view;
    while (cursor.Next(&view)) {
      if (context != nullptr) {
        BIPIE_RETURN_NOT_OK(context->CheckNotCancelled());
      }
      const size_t n = view.num_rows;
      // Filter evaluation stays vectorized (shared Filter component); the
      // aggregation below is the row-at-a-time part under test.
      const uint8_t* sel = nullptr;
      if (!query.filters.empty()) {
        sel_buf.Resize(n);
        sel_tmp.Resize(n);
        for (size_t f = 0; f < query.filters.size(); ++f) {
          uint8_t* dst = f == 0 ? sel_buf.data() : sel_tmp.data();
          BIPIE_RETURN_NOT_OK(query.filters[f].Evaluate(
              segment.column(filter_cols[f]), view.start, n, dst));
          if (f > 0) AndSelection(sel_buf.data(), sel_tmp.data(), n,
                                  sel_buf.data());
        }
        sel = sel_buf.data();
      }
      if (view.alive_bytes() != nullptr) {
        if (sel == nullptr) {
          sel_buf.Resize(n);
          std::memcpy(sel_buf.data(), view.alive_bytes(), n);
          sel = sel_buf.data();
        } else {
          AndSelection(sel_buf.data(), view.alive_bytes(), n,
                       sel_buf.data());
        }
      }

      std::vector<const int64_t*> col_ptrs(table.num_columns(), nullptr);
      for (size_t c = 0; c < table.num_columns(); ++c) {
        if (!needed[c]) continue;
        decoded[c].Resize(n * sizeof(int64_t));
        segment.column(c).DecodeInt64(view.start, n,
                                      decoded[c].data_as<int64_t>());
        col_ptrs[c] = decoded[c].data_as<int64_t>();
      }
      for (size_t a = 0; a < num_specs; ++a) {
        if (query.aggregates[a].kind == AggregateSpec::Kind::kSumExpr) {
          expr_out[a].resize(n);
          query.aggregates[a].expr->Evaluate(col_ptrs.data(), n,
                                             expr_out[a].data());
        }
      }

      const int64_t* g0 =
          group_cols.empty() ? nullptr : col_ptrs[group_cols[0]];
      const int64_t* g1 =
          group_cols.size() < 2 ? nullptr : col_ptrs[group_cols[1]];
      for (size_t i = 0; i < n; ++i) {
        if (sel != nullptr && sel[i] == 0) continue;
        const uint32_t slot = groups.Probe(g0 == nullptr ? 0 : g0[i],
                                           g1 == nullptr ? 0 : g1[i]);
        if (slot >= counts.size()) {
          counts.resize(slot + 1, 0);
          sums.resize((slot + 1) * num_specs, 0);
        }
        const bool fresh = counts[slot] == 0;
        ++counts[slot];
        int64_t* row = sums.data() + static_cast<size_t>(slot) * num_specs;
        for (size_t a = 0; a < num_specs; ++a) {
          switch (query.aggregates[a].kind) {
            case AggregateSpec::Kind::kCount:
              break;
            case AggregateSpec::Kind::kSum:
            case AggregateSpec::Kind::kAvg:
              row[a] += col_ptrs[agg_cols[a]][i];
              break;
            case AggregateSpec::Kind::kSumExpr:
              row[a] += expr_out[a][i];
              break;
            case AggregateSpec::Kind::kMin:
              row[a] = fresh ? col_ptrs[agg_cols[a]][i]
                             : std::min(row[a], col_ptrs[agg_cols[a]][i]);
              break;
            case AggregateSpec::Kind::kMax:
              row[a] = fresh ? col_ptrs[agg_cols[a]][i]
                             : std::max(row[a], col_ptrs[agg_cols[a]][i]);
              break;
          }
        }
      }

      BIPIE_RETURN_NOT_OK(reservation.Update(
          groups.MemoryBytes() + counts.capacity() * sizeof(uint64_t) +
          sums.capacity() * sizeof(int64_t)));
    }

    // Merge this segment's table into global results by decoded value
    // (string group columns decode ids through the segment dictionary).
    for (uint32_t slot = 0; slot < groups.size(); ++slot) {
      std::vector<GroupValue> key;
      for (size_t k = 0; k < group_cols.size(); ++k) {
        const EncodedColumn& col = segment.column(group_cols[k]);
        const int64_t logical =
            k == 0 ? groups.key(slot).first : groups.key(slot).second;
        GroupValue v;
        if (col.type() == ColumnType::kString) {
          v.is_string = true;
          v.string_value =
              col.string_dictionary()->value(static_cast<uint32_t>(logical));
        } else {
          v.int_value = logical;
        }
        key.push_back(std::move(v));
      }
      ResultRow& row = merged[key];
      const bool fresh = row.sums.empty();
      if (fresh) {
        row.group = key;
        row.sums.assign(num_specs, 0);
      }
      row.count += counts[slot];
      for (size_t a = 0; a < num_specs; ++a) {
        const int64_t v = sums[static_cast<size_t>(slot) * num_specs + a];
        switch (query.aggregates[a].kind) {
          case AggregateSpec::Kind::kMin:
            row.sums[a] = fresh ? v : std::min(row.sums[a], v);
            break;
          case AggregateSpec::Kind::kMax:
            row.sums[a] = fresh ? v : std::max(row.sums[a], v);
            break;
          default:
            row.sums[a] += v;
            break;
        }
      }
    }
  }

  QueryResult result;
  result.group_column_names = query.group_by;
  for (auto& [key, row] : merged) {
    for (size_t a = 0; a < num_specs; ++a) {
      if (query.aggregates[a].kind == AggregateSpec::Kind::kCount) {
        row.sums[a] = static_cast<int64_t>(row.count);
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace

Result<QueryResult> ExecuteQueryHashAgg(const Table& table,
                                        const QuerySpec& query,
                                        QueryContext* context) {
  // Bind the query's tracker for the whole run: the decode buffers are
  // AlignedBuffers (charged automatically) and the hash-table state goes
  // through the reservation above. A hard-limit breach on a throwing
  // Resize path lands here as bad_alloc and degrades to the same
  // structured error a failed reservation produces.
  MemoryTrackerScope memory_scope(
      context != nullptr ? &context->memory_tracker() : nullptr);
  try {
    return ExecuteQueryHashAggImpl(table, query, context);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "hash aggregation exceeded the memory limit");
  }
}

}  // namespace bipie
