// Naive decode-everything reference engine.
//
// Executes the same QuerySpec as BIPieScan with the simplest possible
// machinery: decode every needed column to int64 vectors, evaluate the
// filter row by row, aggregate into a std::map keyed by decoded group
// values. Deliberately independent of the Vector Toolbox so it can serve as
// a differential-testing oracle for the scan, and as the "unspecialized
// engine" baseline in benchmarks.
#ifndef BIPIE_BASELINE_SCALAR_ENGINE_H_
#define BIPIE_BASELINE_SCALAR_ENGINE_H_

#include "common/status.h"
#include "core/query.h"
#include "storage/table.h"

namespace bipie {

Result<QueryResult> ExecuteQueryNaive(const Table& table,
                                      const QuerySpec& query);

}  // namespace bipie

#endif  // BIPIE_BASELINE_SCALAR_ENGINE_H_
