// Golden-file corruption sweep: every single-byte flip and every truncation
// of a saved table must produce either a structured load error or a table
// that passed deep validation and can be scanned — never a crash, never
// undefined behaviour. This is the ISSUE's acceptance gate for the
// untrusted-data boundary; run it under ASan/UBSan to make "never a crash"
// mean something.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/scan.h"
#include "storage/table_io.h"

namespace bipie {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Small (a few KB on disk) but exercises every encoding, a string
// dictionary, two segments and a liveness mask.
Table MakeGoldenTable() {
  Table table({{"flag", ColumnType::kString},
               {"packed", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"dict", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"runs", ColumnType::kInt64, EncodingChoice::kRle},
               {"mono", ColumnType::kInt64, EncodingChoice::kDelta}});
  TableAppender app(&table, 256);
  Rng rng(71);
  const char* flags[3] = {"A", "N", "R"};
  for (size_t i = 0; i < 400; ++i) {
    app.AppendRow({0, rng.NextInRange(-200, 200),
                   1000 * static_cast<int64_t>(rng.NextBounded(5)),
                   static_cast<int64_t>(i / 40),
                   static_cast<int64_t>(i * 3) + rng.NextInRange(0, 2)},
                  {flags[rng.NextBounded(3)], "", "", "", ""});
  }
  app.Flush();
  table.mutable_segment(0).DeleteRow(5);
  return table;
}

std::vector<uint8_t> SaveGolden(const Table& table, const std::string& path,
                                int format_version) {
  SaveOptions opts;
  opts.format_version = format_version;
  EXPECT_TRUE(SaveTable(table, path, opts).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(std::ftell(f));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteMutant(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

bool IsStructuredLoadError(const Status& st) {
  switch (st.code()) {
    case StatusCode::kDataLoss:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotSupported:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

// Loads the mutant at `path`; a mutant that still loads must be scannable
// end to end (deep validation already passed inside LoadTable).
void ExpectCleanOutcome(const std::string& path, const char* what,
                        size_t position) {
  auto loaded = LoadTable(path);
  if (!loaded.ok()) {
    EXPECT_TRUE(IsStructuredLoadError(loaded.status()))
        << what << " at byte " << position
        << " produced unexpected code: " << loaded.status().ToString();
    return;
  }
  QuerySpec query;
  query.group_by = {"flag"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("packed"),
                      AggregateSpec::Min("dict"), AggregateSpec::Max("runs")};
  query.filters.emplace_back("packed", CompareOp::kGe, int64_t{-50});
  auto result = ExecuteQuery(loaded.value(), query);
  // The scan may legitimately fail with a structured error (e.g. a mutant
  // that validly shrank a column's claimed range); it must not crash.
  if (!result.ok()) {
    EXPECT_NE(result.status().code(), StatusCode::kInternal)
        << what << " at byte " << position << ": "
        << result.status().ToString();
  }
}

void SweepByteFlips(const std::vector<uint8_t>& golden,
                    const std::string& path) {
  std::vector<uint8_t> mutant = golden;
  for (size_t i = 0; i < golden.size(); ++i) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0xFF}}) {
      mutant[i] = golden[i] ^ flip;
      WriteMutant(path, mutant);
      ExpectCleanOutcome(path, "byte flip", i);
    }
    mutant[i] = golden[i];
  }
}

void SweepTruncations(const std::vector<uint8_t>& golden,
                      const std::string& path) {
  for (size_t len = 0; len < golden.size(); ++len) {
    WriteMutant(path,
                std::vector<uint8_t>(golden.begin(), golden.begin() + len));
    ExpectCleanOutcome(path, "truncation", len);
  }
}

TEST(CorruptionTest, V2ByteFlipSweep) {
  Table table = MakeGoldenTable();
  const std::string path = TempPath("sweep-v2-flip.bipie");
  SweepByteFlips(SaveGolden(table, path, 2), path);
  std::remove(path.c_str());
}

TEST(CorruptionTest, V2TruncationSweep) {
  Table table = MakeGoldenTable();
  const std::string path = TempPath("sweep-v2-trunc.bipie");
  SweepTruncations(SaveGolden(table, path, 2), path);
  std::remove(path.c_str());
}

// The v1 sweep is the harder one: with no checksums, *deep validation* is
// the only thing standing between a flipped byte and the kernels.
TEST(CorruptionTest, V1ByteFlipSweep) {
  Table table = MakeGoldenTable();
  const std::string path = TempPath("sweep-v1-flip.bipie");
  SweepByteFlips(SaveGolden(table, path, 1), path);
  std::remove(path.c_str());
}

TEST(CorruptionTest, V1TruncationSweep) {
  Table table = MakeGoldenTable();
  const std::string path = TempPath("sweep-v1-trunc.bipie");
  SweepTruncations(SaveGolden(table, path, 1), path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bipie
