// Shared helpers for bipie tests.
#ifndef BIPIE_TESTS_TEST_UTIL_H_
#define BIPIE_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/bits.h"
#include "common/cpu.h"
#include "common/random.h"
#include "encoding/bitpack.h"

namespace bipie::test {

// Runs the test body once per ISA tier actually available on this machine,
// restoring the default tier afterwards.
template <typename Fn>
void ForEachIsaTier(Fn&& fn) {
  const IsaTier detected = DetectIsaTier();
  SetIsaTierForTesting(IsaTier::kScalar);
  fn(IsaTier::kScalar);
  if (detected >= IsaTier::kAvx2) {
    SetIsaTierForTesting(IsaTier::kAvx2);
    fn(IsaTier::kAvx2);
  }
  if (detected >= IsaTier::kAvx512) {
    SetIsaTierForTesting(IsaTier::kAvx512);
    fn(IsaTier::kAvx512);
  }
  SetIsaTierForTesting(detected);
}

// Random values each fitting in `bit_width` bits.
inline std::vector<uint64_t> RandomPackedValues(size_t n, int bit_width,
                                                uint64_t seed) {
  std::vector<uint64_t> values(n);
  Rng rng(seed);
  const uint64_t mask = LowBitsMask(bit_width);
  for (auto& v : values) v = rng.Next() & mask;
  return values;
}

// Bit-packs values into a padded buffer.
inline AlignedBuffer Pack(const std::vector<uint64_t>& values,
                          int bit_width) {
  AlignedBuffer buf(BitPackedBytes(values.size(), bit_width) + 8);
  BitPack(values.data(), values.size(), bit_width, buf.data());
  return buf;
}

// Random byte group ids below num_groups, in a padded buffer.
inline AlignedBuffer RandomGroups(size_t n, int num_groups, uint64_t seed) {
  AlignedBuffer buf(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    buf.data()[i] = static_cast<uint8_t>(rng.NextBounded(num_groups));
  }
  return buf;
}

// Copies a vector into a padded AlignedBuffer.
template <typename T>
AlignedBuffer ToPadded(const std::vector<T>& v) {
  AlignedBuffer buf(v.size() * sizeof(T));
  std::memcpy(buf.data(), v.data(), v.size() * sizeof(T));
  return buf;
}

}  // namespace bipie::test

#endif  // BIPIE_TESTS_TEST_UTIL_H_
