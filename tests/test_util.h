// Shared helpers for bipie tests.
#ifndef BIPIE_TESTS_TEST_UTIL_H_
#define BIPIE_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/bits.h"
#include "common/memory_tracker.h"
#include "common/cpu.h"
#include "common/random.h"
#include "core/query.h"
#include "core/scan.h"
#include "encoding/bitpack.h"
#include "storage/table.h"

namespace bipie::test {

// Runs the test body once per ISA tier actually available on this machine,
// restoring the default tier afterwards.
template <typename Fn>
void ForEachIsaTier(Fn&& fn) {
  const IsaTier detected = DetectIsaTier();
  SetIsaTierForTesting(IsaTier::kScalar);
  fn(IsaTier::kScalar);
  if (detected >= IsaTier::kAvx2) {
    SetIsaTierForTesting(IsaTier::kAvx2);
    fn(IsaTier::kAvx2);
  }
  if (detected >= IsaTier::kAvx512) {
    SetIsaTierForTesting(IsaTier::kAvx512);
    fn(IsaTier::kAvx512);
  }
  SetIsaTierForTesting(detected);
}

// Random values each fitting in `bit_width` bits.
inline std::vector<uint64_t> RandomPackedValues(size_t n, int bit_width,
                                                uint64_t seed) {
  std::vector<uint64_t> values(n);
  Rng rng(seed);
  const uint64_t mask = LowBitsMask(bit_width);
  for (auto& v : values) v = rng.Next() & mask;
  return values;
}

// Bit-packs values into a padded buffer.
inline AlignedBuffer Pack(const std::vector<uint64_t>& values,
                          int bit_width) {
  AlignedBuffer buf(BitPackedBytes(values.size(), bit_width) + 8);
  BitPack(values.data(), values.size(), bit_width, buf.data());
  return buf;
}

// Random byte group ids below num_groups, in a padded buffer.
inline AlignedBuffer RandomGroups(size_t n, int num_groups, uint64_t seed) {
  AlignedBuffer buf(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    buf.data()[i] = static_cast<uint8_t>(rng.NextBounded(num_groups));
  }
  return buf;
}

// Copies a vector into a padded AlignedBuffer.
template <typename T>
AlignedBuffer ToPadded(const std::vector<T>& v) {
  AlignedBuffer buf(v.size() * sizeof(T));
  std::memcpy(buf.data(), v.data(), v.size() * sizeof(T));
  return buf;
}

// Cross-checks the accounting identities every *successful* Execute() must
// satisfy, whatever strategies ran and however the work was morselized
// (DESIGN.md §12). Used after every scan in the test suite and as a fuzz
// oracle: a violation means the stats pipeline miscounted, which usually
// flags a real execution bug (double-counted segment, skipped batch, stale
// stats after a fallback).
struct StatsInvariants {
  // The invariants decidable from the stats and the query alone.
  // Returns human-readable violation messages; empty means all hold.
  static std::vector<std::string> Check(const ScanStats& stats,
                                        const QuerySpec& query) {
    std::vector<std::string> v;
    auto fail = [&v](std::string msg) { v.push_back(std::move(msg)); };
    auto num = [](size_t n) { return std::to_string(n); };

    if (stats.used_hash_fallback) {
      // The generic engine ran; every specialized-scan progress counter must
      // have been reset. (The segment plan — scanned/eliminated — stands:
      // it describes the elimination pass, which did happen.)
      if (stats.batches != 0) fail("fallback with batches != 0");
      if (stats.rows_scanned != 0) fail("fallback with rows_scanned != 0");
      if (stats.rows_selected != 0) fail("fallback with rows_selected != 0");
      if (stats.runs_aggregated != 0 || stats.rows_run_aggregated != 0) {
        fail("fallback with run-level stats != 0");
      }
      if (SelectionTotal(stats) != 0) fail("fallback with selection stats");
      for (size_t a = 0; a < kNumAggregationStrategies; ++a) {
        if (stats.aggregation_segments[a] != 0) {
          fail("fallback with aggregation_segments[" + num(a) + "] != 0");
        }
      }
      return v;
    }

    if (stats.rows_selected > stats.rows_scanned) {
      fail("rows_selected " + num(stats.rows_selected) + " > rows_scanned " +
           num(stats.rows_scanned));
    }
    if (stats.rows_run_aggregated > stats.rows_selected) {
      fail("rows_run_aggregated " + num(stats.rows_run_aggregated) +
           " > rows_selected " + num(stats.rows_selected));
    }
    // Every aggregated span covers at least one row, so the two run
    // counters are zero together and rows dominate spans.
    if (stats.rows_run_aggregated < stats.runs_aggregated) {
      fail("rows_run_aggregated " + num(stats.rows_run_aggregated) +
           " < runs_aggregated " + num(stats.runs_aggregated));
    }
    if ((stats.runs_aggregated == 0) != (stats.rows_run_aggregated == 0)) {
      fail("runs_aggregated / rows_run_aggregated zero-ness disagrees");
    }
    if (stats.runs_aggregated > 0 &&
        stats.aggregation_segments[static_cast<int>(
            AggregationStrategy::kRunBased)] == 0) {
      fail("run spans aggregated but no segment used kRunBased");
    }

    // Each scanned segment resolves exactly one aggregation strategy, and
    // is counted exactly once however many morsels covered it.
    size_t strategy_total = 0;
    for (size_t a = 0; a < kNumAggregationStrategies; ++a) {
      strategy_total += stats.aggregation_segments[a];
    }
    if (strategy_total != stats.segments_scanned) {
      fail("sum(aggregation_segments) " + num(strategy_total) +
           " != segments_scanned " + num(stats.segments_scanned));
    }

    // One selection decision per batch, except batches whose selection
    // vector came up empty (they return before deciding) — so <=, not ==.
    if (SelectionTotal(stats) > stats.batches) {
      fail("selection decisions " + num(SelectionTotal(stats)) +
           " > batches " + num(stats.batches));
    }
    // Run-based morsels bypass the batch loop entirely.
    if (stats.batches == 0 && stats.rows_scanned > 0 &&
        stats.rows_run_aggregated == 0 && stats.rows_selected > 0) {
      fail("rows selected without batches or run spans");
    }

    if (query.filters.empty() && stats.segments_eliminated > 0) {
      fail("segments eliminated without filters");
    }
    return v;
  }

  // The full set: adds the table-level accounting (row totals, liveness)
  // and, when given, the result-level identity (every selected row lands in
  // exactly one output group). Use after a successful Execute().
  static std::vector<std::string> Check(const ScanStats& stats,
                                        const QuerySpec& query,
                                        const Table& table,
                                        const QueryResult* result = nullptr) {
    std::vector<std::string> v = Check(stats, query);
    auto fail = [&v](std::string msg) { v.push_back(std::move(msg)); };
    auto num = [](size_t n) { return std::to_string(n); };

    size_t nonempty_segments = 0;
    size_t total_rows = 0;
    size_t alive_rows = 0;
    for (size_t s = 0; s < table.num_segments(); ++s) {
      const Segment& segment = table.segment(s);
      if (segment.num_rows() == 0) continue;
      ++nonempty_segments;
      total_rows += segment.num_rows();
      const uint8_t* alive = segment.alive_bytes();
      if (alive == nullptr) {
        alive_rows += segment.num_rows();
      } else {
        for (size_t r = 0; r < segment.num_rows(); ++r) {
          alive_rows += alive[r] != 0 ? 1 : 0;
        }
      }
    }

    if (stats.segments_scanned + stats.segments_eliminated !=
        nonempty_segments) {
      fail("segments scanned " + num(stats.segments_scanned) +
           " + eliminated " + num(stats.segments_eliminated) +
           " != non-empty segments " + num(nonempty_segments));
    }

    if (!stats.used_hash_fallback) {
      if (stats.segments_eliminated == 0) {
        if (stats.rows_scanned != total_rows) {
          fail("rows_scanned " + num(stats.rows_scanned) +
               " != table rows " + num(total_rows) +
               " with no segment eliminated");
        }
        if (query.filters.empty() && stats.rows_selected != alive_rows) {
          fail("rows_selected " + num(stats.rows_selected) +
               " != alive rows " + num(alive_rows) + " with no filters");
        }
      }
      if (query.filters.empty() && alive_rows == total_rows &&
          stats.rows_selected != stats.rows_scanned) {
        fail("rows_selected != rows_scanned with no filters and no deletes");
      }
      if (result != nullptr) {
        size_t result_rows = 0;
        for (const ResultRow& row : result->rows) result_rows += row.count;
        if (result_rows != stats.rows_selected) {
          fail("sum(result counts) " + num(result_rows) +
               " != rows_selected " + num(stats.rows_selected));
        }
      }
    }
    return v;
  }

  // One line per violation, for assertion messages.
  static std::string Describe(const std::vector<std::string>& violations) {
    std::string out;
    for (const std::string& m : violations) {
      out += "stats invariant violated: " + m + "\n";
    }
    return out;
  }

 private:
  static size_t SelectionTotal(const ScanStats& stats) {
    return stats.selection.gather + stats.selection.compact +
           stats.selection.special_group + stats.selection.unfiltered;
  }
};

// ExecuteQuery with the stats invariants asserted on every successful scan:
// a violation surfaces as an Internal error carrying the violation text, so
// existing ASSERT_TRUE(got.ok()) call sites report it verbatim. Error-path
// expectations (kNotSupported, kOverflowRisk, ...) are unaffected — those
// scans never reach the check.
inline Result<QueryResult> ExecuteChecked(const Table& table, QuerySpec query,
                                          ScanOptions options = {}) {
  BIPieScan scan(table, query, options);
  Result<QueryResult> result = scan.Execute();
  if (result.ok()) {
    const std::vector<std::string> violations =
        StatsInvariants::Check(scan.stats(), query, table, &result.value());
    if (!violations.empty()) {
      return Status::Internal(StatsInvariants::Describe(violations));
    }
  }
  // Tracker-balance invariant (DESIGN.md §13): whether the scan succeeded
  // or failed, every byte charged to the query's tracker must have been
  // released by the time Execute() returns — scratch buffers are re-homed
  // to the process root on morsel-scope exit, and error paths unwind their
  // charges. A residue means a charge/release asymmetry (leak in the
  // accounting, not necessarily in the allocator).
  if (options.context != nullptr) {
    const size_t residue = options.context->memory_tracker().used();
    if (residue != 0) {
      return Status::Internal("memory tracker balance invariant violated: " +
                              std::to_string(residue) +
                              " bytes still charged after Execute()");
    }
  }
  return result;
}

}  // namespace bipie::test

// Asserts the stats invariants for a completed BIPieScan (gtest files only:
// expands to EXPECT_TRUE). `result_ptr` may be null when the QueryResult is
// not at hand.
#define BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, result_ptr)       \
  do {                                                                      \
    const std::vector<std::string> bipie_stats_violations_ =                \
        ::bipie::test::StatsInvariants::Check((scan).stats(), (query),      \
                                              (table), (result_ptr));       \
    EXPECT_TRUE(bipie_stats_violations_.empty())                            \
        << ::bipie::test::StatsInvariants::Describe(bipie_stats_violations_); \
  } while (0)

#endif  // BIPIE_TESTS_TEST_UTIL_H_
