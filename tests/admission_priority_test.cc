// Priority-aware admission (DESIGN.md §14): strict band ordering on slot
// release, per-band bounded queues, aging-based starvation avoidance, the
// async Enqueue/grant-callback path the server uses, and queue-wait
// accounting (the Admit out-param and ScanStats::admission_wait_ns).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/scan.h"
#include "exec/admission.h"
#include "exec/query_context.h"
#include "obs/metrics.h"
#include "tests/test_util.h"

namespace bipie {
namespace {

using Ticket = AdmissionController::Ticket;

TEST(AdmissionPriorityTest, InlineGrantWhenSlotFree) {
  AdmissionController controller({2, 4});
  std::vector<Ticket> tickets;
  int calls = 0;
  Status st = controller.Enqueue(
      QueryPriority::kLow, nullptr, [&](Status admit, Ticket ticket) {
        ++calls;
        EXPECT_TRUE(admit.ok());
        EXPECT_TRUE(ticket.holds_slot());
        tickets.push_back(std::move(ticket));
      });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 1);  // granted inline, no queueing
  EXPECT_EQ(controller.running(), 1u);
  tickets.clear();
  EXPECT_EQ(controller.running(), 0u);
}

TEST(AdmissionPriorityTest, StrictPriorityOrderOnRelease) {
  AdmissionController::Limits limits{1, 4, /*aging_ms=*/0};
  AdmissionController controller(limits);
  Ticket holder;
  ASSERT_TRUE(controller.Admit(nullptr, &holder).ok());

  std::vector<QueryPriority> grant_order;
  std::vector<Ticket> held;
  auto enqueue = [&](QueryPriority priority) {
    ASSERT_TRUE(controller
                    .Enqueue(priority, nullptr,
                             [&grant_order, &held, priority](Status admit,
                                                             Ticket ticket) {
                               ASSERT_TRUE(admit.ok());
                               grant_order.push_back(priority);
                               held.push_back(std::move(ticket));
                             })
                    .ok());
  };
  // Enqueued worst-first: dequeue must be by band, not arrival.
  enqueue(QueryPriority::kLow);
  enqueue(QueryPriority::kNormal);
  enqueue(QueryPriority::kHigh);
  EXPECT_EQ(controller.queued(), 3u);
  EXPECT_EQ(controller.queued(QueryPriority::kHigh), 1u);
  EXPECT_EQ(controller.queued(QueryPriority::kNormal), 1u);
  EXPECT_EQ(controller.queued(QueryPriority::kLow), 1u);
  EXPECT_TRUE(grant_order.empty());

  // Each release transfers the slot to the best queued band. Releasing a
  // granted ticket fires the next grant callback synchronously (which
  // appends to `held`), so swap the tickets out before destroying them.
  auto release_held = [&held] {
    std::vector<Ticket> done;
    done.swap(held);
  };
  holder.Release();
  ASSERT_EQ(grant_order.size(), 1u);
  release_held();  // chains the slot to the next waiter
  ASSERT_EQ(grant_order.size(), 2u);
  release_held();
  ASSERT_EQ(grant_order.size(), 3u);
  release_held();

  EXPECT_EQ(grant_order[0], QueryPriority::kHigh);
  EXPECT_EQ(grant_order[1], QueryPriority::kNormal);
  EXPECT_EQ(grant_order[2], QueryPriority::kLow);
  EXPECT_EQ(controller.running(), 0u);
  EXPECT_EQ(controller.queued(), 0u);
}

TEST(AdmissionPriorityTest, QueueLimitIsPerBand) {
  AdmissionController controller({1, 1});
  Ticket holder;
  ASSERT_TRUE(controller.Admit(nullptr, &holder).ok());

  std::atomic<int> cancelled{0};
  auto park = [&](Status admit, Ticket) {
    EXPECT_EQ(admit.code(), StatusCode::kCancelled);
    ++cancelled;
  };
  ASSERT_TRUE(controller.Enqueue(QueryPriority::kNormal, nullptr, park).ok());
  // The normal band is full; one more normal query is rejected...
  Status overflow = controller.Enqueue(QueryPriority::kNormal, nullptr,
                                       [](Status, Ticket) { FAIL(); });
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  // ...but the high band has its own budget.
  ASSERT_TRUE(controller.Enqueue(QueryPriority::kHigh, nullptr, park).ok());
  EXPECT_EQ(controller.queued(QueryPriority::kNormal), 1u);
  EXPECT_EQ(controller.queued(QueryPriority::kHigh), 1u);

  controller.CancelQueued();
  EXPECT_EQ(cancelled.load(), 2);
  EXPECT_EQ(controller.queued(), 0u);
  holder.Release();
  EXPECT_EQ(controller.running(), 0u);
}

TEST(AdmissionPriorityTest, AgingPreventsStarvation) {
  // One slot, 20ms aging quantum: a low query that has waited two quanta
  // is effectively high and beats a freshly queued high query (FIFO on the
  // effective-band tie).
  AdmissionController::Limits limits{1, 4, /*aging_ms=*/20};
  AdmissionController controller(limits);
  Ticket holder;
  ASSERT_TRUE(controller.Admit(nullptr, &holder).ok());

  std::vector<QueryPriority> grant_order;
  std::vector<Ticket> held;
  auto enqueue = [&](QueryPriority priority) {
    ASSERT_TRUE(controller
                    .Enqueue(priority, nullptr,
                             [&grant_order, &held, priority](Status admit,
                                                             Ticket ticket) {
                               ASSERT_TRUE(admit.ok());
                               grant_order.push_back(priority);
                               held.push_back(std::move(ticket));
                             })
                    .ok());
  };
  enqueue(QueryPriority::kLow);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  enqueue(QueryPriority::kHigh);

  auto release_held = [&held] {
    std::vector<Ticket> done;  // grant callbacks append to `held` reentrantly
    done.swap(held);
  };
  holder.Release();
  ASSERT_EQ(grant_order.size(), 1u);
  EXPECT_EQ(grant_order[0], QueryPriority::kLow);  // aged past the high query
  release_held();
  ASSERT_EQ(grant_order.size(), 2u);
  EXPECT_EQ(grant_order[1], QueryPriority::kHigh);
  release_held();
}

TEST(AdmissionPriorityTest, WithoutAgingHighAlwaysWins) {
  // The control for AgingPreventsStarvation: same arrival pattern, aging
  // off, and the late high query jumps the queue.
  AdmissionController::Limits limits{1, 4, /*aging_ms=*/0};
  AdmissionController controller(limits);
  Ticket holder;
  ASSERT_TRUE(controller.Admit(nullptr, &holder).ok());

  std::vector<QueryPriority> grant_order;
  std::vector<Ticket> held;
  auto enqueue = [&](QueryPriority priority) {
    ASSERT_TRUE(controller
                    .Enqueue(priority, nullptr,
                             [&grant_order, &held, priority](Status admit,
                                                             Ticket ticket) {
                               ASSERT_TRUE(admit.ok());
                               grant_order.push_back(priority);
                               held.push_back(std::move(ticket));
                             })
                    .ok());
  };
  enqueue(QueryPriority::kLow);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  enqueue(QueryPriority::kHigh);

  auto release_held = [&held] {
    std::vector<Ticket> done;  // grant callbacks append to `held` reentrantly
    done.swap(held);
  };
  holder.Release();
  ASSERT_EQ(grant_order.size(), 1u);
  EXPECT_EQ(grant_order[0], QueryPriority::kHigh);
  release_held();
  ASSERT_EQ(grant_order.size(), 2u);
  release_held();
}

TEST(AdmissionPriorityTest, OldestWaitMsTracksTheFrontWaiter) {
  // OldestWaitMs is the live queue-delay signal the server's shed policy
  // reads: zero for an empty band, the front (oldest) waiter's age once
  // queries queue, back to zero when the band drains.
  AdmissionController controller({1, 4});
  Ticket holder;
  ASSERT_TRUE(controller.Admit(nullptr, &holder).ok());
  EXPECT_EQ(controller.OldestWaitMs(QueryPriority::kLow), 0u);

  std::vector<Ticket> granted;
  auto hold = [&granted](Status admit, Ticket ticket) {
    ASSERT_TRUE(admit.ok());
    granted.push_back(std::move(ticket));
  };
  ASSERT_TRUE(controller.Enqueue(QueryPriority::kLow, nullptr, hold).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(controller.Enqueue(QueryPriority::kLow, nullptr, hold).ok());

  // FIFO within the band: the front waiter is the oldest, so its age (not
  // the fresh enqueue's) is reported. Other bands stay at zero.
  EXPECT_GE(controller.OldestWaitMs(QueryPriority::kLow), 25u);
  EXPECT_EQ(controller.OldestWaitMs(QueryPriority::kNormal), 0u);
  EXPECT_EQ(controller.OldestWaitMs(QueryPriority::kHigh), 0u);

  holder.Release();
  {
    std::vector<Ticket> done;  // grant callbacks append reentrantly
    done.swap(granted);
    done.clear();
  }
  std::vector<Ticket> rest;
  rest.swap(granted);
  rest.clear();
  EXPECT_EQ(controller.queued(), 0u);
  EXPECT_EQ(controller.OldestWaitMs(QueryPriority::kLow), 0u);
}

TEST(AdmissionPriorityTest, TickExpiresDeadlinedQueuedQuery) {
  AdmissionController controller({1, 4});
  Ticket holder;
  ASSERT_TRUE(controller.Admit(nullptr, &holder).ok());

  QueryContext ctx;
  ctx.set_deadline(std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1));
  std::atomic<int> failed{0};
  ASSERT_TRUE(controller
                  .Enqueue(QueryPriority::kNormal, &ctx,
                           [&](Status admit, Ticket ticket) {
                             EXPECT_EQ(admit.code(), StatusCode::kCancelled);
                             EXPECT_FALSE(ticket.holds_slot());
                             ++failed;
                           })
                  .ok());
  EXPECT_EQ(controller.queued(), 1u);

  const obs::MetricsSnapshot before = obs::SnapshotMetrics();
  controller.Tick();
  EXPECT_EQ(failed.load(), 1);
  EXPECT_EQ(controller.queued(), 0u);
  // The deadline expiry while queued counts as an admission timeout.
  const obs::MetricsSnapshot delta = obs::MetricsDelta(before);
  EXPECT_EQ(delta.ValueOf("admission.timeouts"), 1u);
  // Releasing the holder with an empty queue just frees the slot.
  holder.Release();
  EXPECT_EQ(controller.running(), 0u);
}

TEST(AdmissionPriorityTest, BlockingAdmitReportsQueueWait) {
  AdmissionController controller({1, 4});
  Ticket holder;
  ASSERT_TRUE(controller.Admit(nullptr, &holder).ok());

  uint64_t queue_wait_ns = 0;
  std::thread waiter([&] {
    Ticket ticket;
    const Status status = controller.Admit(nullptr, &ticket,
                                           QueryPriority::kNormal,
                                           &queue_wait_ns);
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  while (controller.queued() == 0) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  holder.Release();
  waiter.join();
  // The waiter was parked ~15ms; the accounting must see a real wait.
  EXPECT_GT(queue_wait_ns, uint64_t{1} * 1000 * 1000);
}

TEST(AdmissionPriorityTest, ScanStatsRecordQueueWait) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"v", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 1024);
  for (size_t i = 0; i < 2000; ++i) {
    app.AppendRow({static_cast<int64_t>(i % 4), static_cast<int64_t>(i % 7)});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("v")};

  AdmissionController controller({1, 4});
  Ticket holder;
  ASSERT_TRUE(controller.Admit(nullptr, &holder).ok());

  ScanOptions options;
  options.admission = &controller;
  BIPieScan scan(table, query, options);
  std::thread query_thread([&] {
    Result<QueryResult> result = scan.Execute();
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  });
  while (controller.queued() == 0) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  holder.Release();
  query_thread.join();
  // Time-in-queue surfaces on the scan's stats, split from execution.
  EXPECT_GT(scan.stats().admission_wait_ns, uint64_t{1} * 1000 * 1000);

  // An uncontended scan records zero wait (fast path, clock untouched).
  BIPieScan uncontended(table, query, options);
  ASSERT_TRUE(uncontended.Execute().ok());
  EXPECT_EQ(uncontended.stats().admission_wait_ns, 0u);
}

}  // namespace
}  // namespace bipie
