#include "encoding/delta.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/random.h"

namespace bipie {
namespace {

TEST(ForEncodeTest, RoundTripUniform) {
  Rng rng(5);
  std::vector<int64_t> v(1000);
  for (auto& x : v) x = rng.NextInRange(-500, 500);
  auto enc = ForEncode(v.data(), v.size());
  std::vector<int64_t> out(v.size());
  ForDecode(enc, 0, v.size(), out.data());
  EXPECT_EQ(out, v);
}

TEST(ForEncodeTest, BitWidthMatchesSpread) {
  std::vector<int64_t> v = {100, 101, 102, 103};
  auto enc = ForEncode(v.data(), v.size());
  EXPECT_EQ(enc.base, 100);
  EXPECT_EQ(enc.bit_width, 2);  // spread 3
}

TEST(ForEncodeTest, ConstantColumnUsesOneBit) {
  std::vector<int64_t> v(64, -7);
  auto enc = ForEncode(v.data(), v.size());
  EXPECT_EQ(enc.base, -7);
  EXPECT_EQ(enc.bit_width, 1);
  std::vector<int64_t> out(64);
  ForDecode(enc, 0, 64, out.data());
  EXPECT_EQ(out, v);
}

TEST(ForEncodeTest, PartialDecode) {
  std::vector<int64_t> v;
  for (int64_t i = 0; i < 200; ++i) v.push_back(i * 3 - 100);
  auto enc = ForEncode(v.data(), v.size());
  std::vector<int64_t> out(10);
  ForDecode(enc, 50, 10, out.data());
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(out[i], v[50 + i]);
}

TEST(ForEncodeTest, ExtremeRange) {
  std::vector<int64_t> v = {std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max(), 0, -1, 1};
  auto enc = ForEncode(v.data(), v.size());
  EXPECT_EQ(enc.bit_width, 64);
  std::vector<int64_t> out(v.size());
  ForDecode(enc, 0, v.size(), out.data());
  EXPECT_EQ(out, v);
}

TEST(ForEncodeTest, Empty) {
  auto enc = ForEncode(nullptr, 0);
  EXPECT_EQ(enc.num_values, 0u);
}

TEST(DeltaEncodeTest, RoundTripMonotonic) {
  Rng rng(6);
  std::vector<int64_t> v;
  int64_t x = 1000000;
  for (int i = 0; i < 500; ++i) {
    v.push_back(x);
    x += static_cast<int64_t>(rng.NextBounded(10));
  }
  auto enc = DeltaEncode(v.data(), v.size());
  // Monotonic column with small steps packs very tightly.
  EXPECT_LE(enc.bit_width, 4);
  std::vector<int64_t> out(v.size());
  DeltaDecode(enc, out.data());
  EXPECT_EQ(out, v);
}

TEST(DeltaEncodeTest, RoundTripNonMonotonic) {
  Rng rng(8);
  std::vector<int64_t> v(300);
  for (auto& x : v) x = rng.NextInRange(-1000000, 1000000);
  auto enc = DeltaEncode(v.data(), v.size());
  std::vector<int64_t> out(v.size());
  DeltaDecode(enc, out.data());
  EXPECT_EQ(out, v);
}

TEST(DeltaEncodeTest, SingleValue) {
  int64_t v = -12345;
  auto enc = DeltaEncode(&v, 1);
  int64_t out = 0;
  DeltaDecode(enc, &out);
  EXPECT_EQ(out, v);
}

}  // namespace
}  // namespace bipie
