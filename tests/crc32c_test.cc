#include "common/crc32c.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace bipie {
namespace {

TEST(Crc32cTest, KnownAnswerVectors) {
  // The classic check value for the Castagnoli polynomial.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);

  // RFC 3720 (iSCSI) appendix B.4 test vectors.
  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  std::vector<uint8_t> ascending(32);
  for (size_t i = 0; i < 32; ++i) ascending[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
}

TEST(Crc32cTest, EmptyInput) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32cExtend(0x12345678u, nullptr, 0), 0x12345678u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data =
      "bipie table format v2 guards every block with crc32c";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32c(data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    ASSERT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, UnalignedStartsAgree) {
  // The software and hardware paths must agree for every alignment and
  // length; sweeping offsets within one buffer exercises both tail handling
  // and the 8-byte folding loop.
  std::vector<uint8_t> buf(256);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 131 + 17);
  }
  for (size_t off = 0; off < 16; ++off) {
    for (size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 100u}) {
      const uint32_t a = Crc32c(buf.data() + off, len);
      // Recompute byte-at-a-time through the extend API; any internal
      // word-folding bug would diverge.
      uint32_t b = 0;
      for (size_t i = 0; i < len; ++i) {
        b = Crc32cExtend(b, buf.data() + off + i, 1);
      }
      ASSERT_EQ(a, b) << "offset " << off << " len " << len;
    }
  }
}

TEST(Crc32cTest, LargeBuffersCrossBlockBoundaries) {
  // The hardware path switches to 3-way interleaved chains at 768 and
  // 24576 bytes; small-chunk extends never enter those loops, so chaining
  // 97-byte pieces cross-checks the interleaved merge against the plain
  // single-stream path at every boundary.
  std::vector<uint8_t> buf(100000);
  uint32_t x = 0x9E3779B9u;
  for (size_t i = 0; i < buf.size(); ++i) {
    x = x * 1664525u + 1013904223u;
    buf[i] = static_cast<uint8_t>(x >> 24);
  }
  for (size_t len : {767u, 768u, 769u, 4096u, 24575u, 24576u, 24577u,
                     65536u, 100000u}) {
    const uint32_t one_shot = Crc32c(buf.data(), len);
    uint32_t chunked = 0;
    for (size_t i = 0; i < len; i += 97) {
      chunked = Crc32cExtend(chunked, buf.data() + i, std::min<size_t>(97, len - i));
    }
    ASSERT_EQ(one_shot, chunked) << "len " << len;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlip) {
  std::vector<uint8_t> buf(64, 0xA5);
  const uint32_t clean = Crc32c(buf.data(), buf.size());
  for (size_t byte = 0; byte < buf.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      buf[byte] ^= static_cast<uint8_t>(1u << bit);
      ASSERT_NE(Crc32c(buf.data(), buf.size()), clean)
          << "undetected flip at byte " << byte << " bit " << bit;
      buf[byte] ^= static_cast<uint8_t>(1u << bit);
    }
  }
}

}  // namespace
}  // namespace bipie
