#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace bipie {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.Next() == b.Next();
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(11);
  std::vector<int> seen(13, 0);
  for (int i = 0; i < 5000; ++i) ++seen[rng.NextBounded(13)];
  for (int v : seen) EXPECT_GT(v, 0);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(ZipfTest, StaysInRangeAndIsSkewed) {
  ZipfGenerator zipf(100, 0.9, 42);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t v = zipf.Next();
    ASSERT_LT(v, 100u);
    ++counts[v];
  }
  // Rank 0 must dominate the tail by a wide margin.
  EXPECT_GT(counts[0], counts[50] * 5);
}

TEST(MakeUniformValuesTest, RespectsCardinality) {
  auto values = MakeUniformValues(10000, 6, 99);
  ASSERT_EQ(values.size(), 10000u);
  for (uint64_t v : values) EXPECT_LT(v, 6u);
  // Every group id should appear.
  for (uint64_t g = 0; g < 6; ++g) {
    EXPECT_NE(std::count(values.begin(), values.end(), g), 0);
  }
}

TEST(MakeSelectionBytesTest, OnlyCanonicalBytes) {
  auto sel = MakeSelectionBytes(10000, 0.5, 17);
  size_t selected = 0;
  for (uint8_t b : sel) {
    ASSERT_TRUE(b == 0x00 || b == 0xFF);
    selected += b != 0;
  }
  EXPECT_NEAR(static_cast<double>(selected) / sel.size(), 0.5, 0.03);
}

TEST(MakeSelectionBytesTest, ExtremeSelectivities) {
  auto none = MakeSelectionBytes(1000, 0.0, 3);
  EXPECT_TRUE(std::all_of(none.begin(), none.end(),
                          [](uint8_t b) { return b == 0; }));
  auto all = MakeSelectionBytes(1000, 1.0, 3);
  EXPECT_TRUE(std::all_of(all.begin(), all.end(),
                          [](uint8_t b) { return b == 0xFF; }));
}

}  // namespace
}  // namespace bipie
