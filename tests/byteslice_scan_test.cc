// Early-pruning byteslice predicate kernels (DESIGN.md §16), every ISA
// tier against a naive reference: all CompareOps, tail/boundary lengths
// that are not lane multiples, the all-decided-at-plane-0 best case and
// the never-decided (all planes read) worst case, across the width
// classes 8/9/16/25/32 plus the extremes.
#include "vector/byteslice_scan.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/bits.h"
#include "encoding/byteslice.h"
#include "expr/predicate.h"
#include "tests/test_util.h"

namespace bipie {
namespace {

constexpr CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kNe,
                                 CompareOp::kLt, CompareOp::kLe,
                                 CompareOp::kGt, CompareOp::kGe,
                                 CompareOp::kBetween};

const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "eq";
    case CompareOp::kNe: return "ne";
    case CompareOp::kLt: return "lt";
    case CompareOp::kLe: return "le";
    case CompareOp::kGt: return "gt";
    case CompareOp::kGe: return "ge";
    case CompareOp::kBetween: return "between";
  }
  return "?";
}

// Verdicts straight from the raw offsets — independent of the plane
// representation the kernels decide on.
std::vector<uint8_t> NaiveCompare(const std::vector<uint64_t>& values,
                                  size_t start, size_t n, CompareOp op,
                                  uint64_t lit, uint64_t lit2) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = values[start + i];
    bool sel = false;
    switch (op) {
      case CompareOp::kEq: sel = v == lit; break;
      case CompareOp::kNe: sel = v != lit; break;
      case CompareOp::kLt: sel = v < lit; break;
      case CompareOp::kLe: sel = v <= lit; break;
      case CompareOp::kGt: sel = v > lit; break;
      case CompareOp::kGe: sel = v >= lit; break;
      case CompareOp::kBetween: sel = v >= lit && v <= lit2; break;
    }
    out[i] = sel ? uint8_t{0xFF} : uint8_t{0x00};
  }
  return out;
}

// Runs every op on every available tier over rows [start, start + n) and
// checks the kernel bytes against the naive reference.
void CheckAllOps(const std::vector<uint64_t>& values, int w, size_t start,
                 size_t n, uint64_t lit, uint64_t lit2) {
  const size_t total = values.size();
  AlignedBuffer planes(ByteSliceBytes(total, w));
  ByteSlicePack(values.data(), total, w, planes.data());
  const int np = ByteSlicePlanes(w);
  for (const CompareOp op : kAllOps) {
    const auto expected = NaiveCompare(values, start, n, op, lit, lit2);
    test::ForEachIsaTier([&](IsaTier tier) {
      AlignedBuffer sel(n == 0 ? 1 : n);
      std::memset(sel.data(), 0xA5, sel.size());
      ByteSliceCompare(planes.data(), total, np, start, n, op,
                       ByteSliceShift(lit, w), ByteSliceShift(lit2, w),
                       sel.data());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(sel.data()[i], expected[i])
            << "w=" << w << " op=" << OpName(op) << " tier="
            << static_cast<int>(tier) << " start=" << start << " i=" << i;
      }
    });
  }
}

class ByteSliceScanWidths : public ::testing::TestWithParam<int> {};

TEST_P(ByteSliceScanWidths, RandomValuesAllOps) {
  const int w = GetParam();
  const size_t n = 1013;  // prime: exercises every tail path
  auto values = test::RandomPackedValues(n, w, 23 * w + 7);
  const uint64_t lit = values[n / 2];  // guarantees eq/ne lanes exist
  const uint64_t mask = LowBitsMask(w);
  const uint64_t lo = lit / 2;
  const uint64_t hi = lit + ((mask - lit) / 2);
  CheckAllOps(values, w, 0, n, lit, hi);
  CheckAllOps(values, w, 0, n, lo, hi);
}

TEST_P(ByteSliceScanWidths, UnalignedWindows) {
  const int w = GetParam();
  const size_t n = 300;
  auto values = test::RandomPackedValues(n, w, 41 * w + 1);
  const uint64_t lit = values[17];
  for (size_t start : {size_t{1}, size_t{31}, size_t{63}, size_t{64},
                       size_t{65}}) {
    CheckAllOps(values, w, start, n - start, lit, lit + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(WidthClasses, ByteSliceScanWidths,
                         ::testing::Values(1, 7, 8, 9, 16, 17, 25, 32, 33,
                                           40, 57, 64));

TEST(ByteSliceScanTest, TailBoundaryLengths) {
  // Lengths straddling the 32- and 64-lane block sizes, never a multiple
  // of 64 except where stated; the kernels must not write past n bytes
  // beyond the documented slack (checked indirectly via exact bytes).
  const int w = 25;
  const size_t total = 1100;
  auto values = test::RandomPackedValues(total, w, 555);
  const uint64_t lit = values[3];
  for (size_t n : {size_t{0}, size_t{1}, size_t{31}, size_t{32}, size_t{33},
                   size_t{63}, size_t{64}, size_t{65}, size_t{127},
                   size_t{128}, size_t{1000}, size_t{1023}}) {
    CheckAllOps(values, w, 0, n, lit, lit + 1000);
  }
}

TEST(ByteSliceScanTest, AllDecidedAtPlaneZero) {
  // Every value differs from the literal in the most significant plane:
  // the early exit fires after one plane, and the result must still be
  // exact. Half the lanes decide below, half above.
  const int w = 32;
  const size_t n = 777;
  std::vector<uint64_t> values(n);
  for (size_t i = 0; i < n; ++i) {
    values[i] = (i % 2 == 0 ? uint64_t{0x10} : uint64_t{0xF0}) << 24 |
                (i * 2654435761u & 0xFFFFFF);
  }
  const uint64_t lit = uint64_t{0x80} << 24 | 0x123456;
  CheckAllOps(values, w, 0, n, lit, lit + (uint64_t{1} << 24));
}

TEST(ByteSliceScanTest, NeverDecidedWorstCase) {
  // All values equal the literal: the equality mask survives every plane,
  // so no early exit is possible — the full-depth path must be exact.
  for (const int w : {9, 25, 33}) {
    const size_t n = 500;
    const uint64_t lit = LowBitsMask(w) / 3;
    std::vector<uint64_t> values(n, lit);
    CheckAllOps(values, w, 0, n, lit, lit);
    // And the off-by-one neighbours: decided only at the very last plane.
    std::vector<uint64_t> near(n);
    for (size_t i = 0; i < n; ++i) {
      near[i] = lit + (i % 3) - 1;  // lit-1, lit, lit+1
    }
    CheckAllOps(near, w, 0, n, lit, lit + 1);
  }
}

TEST(ByteSliceScanTest, ExtremeLiterals) {
  // Domain-edge literals: all-select and all-reject outcomes per op.
  const int w = 17;
  const size_t n = 333;
  auto values = test::RandomPackedValues(n, w, 86);
  CheckAllOps(values, w, 0, n, 0, LowBitsMask(w));
  CheckAllOps(values, w, 0, n, LowBitsMask(w), LowBitsMask(w));
  // Inverted between range (lo > hi) must select nothing.
  const auto expected = NaiveCompare(values, 0, n, CompareOp::kBetween, 100, 7);
  AlignedBuffer planes(ByteSliceBytes(n, w));
  ByteSlicePack(values.data(), n, w, planes.data());
  test::ForEachIsaTier([&](IsaTier) {
    AlignedBuffer sel(n);
    ByteSliceCompare(planes.data(), n, ByteSlicePlanes(w), 0, n,
                     CompareOp::kBetween, ByteSliceShift(100, w),
                     ByteSliceShift(7, w), sel.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(sel.data()[i], expected[i]) << i;
    }
  });
}

}  // namespace
}  // namespace bipie
