#include "storage/table_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "baseline/scalar_engine.h"
#include "common/random.h"
#include "core/scan.h"

namespace bipie {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Table MakeRichTable(size_t rows, uint64_t seed) {
  Table table({{"flag", ColumnType::kString},
               {"packed", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"dict", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"runs", ColumnType::kInt64, EncodingChoice::kRle},
               {"mono", ColumnType::kInt64, EncodingChoice::kDelta}});
  TableAppender app(&table, 2048);
  Rng rng(seed);
  const char* flags[3] = {"A", "N", "R"};
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({0, rng.NextInRange(-200, 200),
                   1000 * static_cast<int64_t>(rng.NextBounded(5)),
                   static_cast<int64_t>(i / 100),
                   static_cast<int64_t>(i * 3) + rng.NextInRange(0, 2)},
                  {flags[rng.NextBounded(3)], "", "", "", ""});
  }
  app.Flush();
  return table;
}

TEST(TableIoTest, RoundTripPreservesEverything) {
  Table original = MakeRichTable(5000, 11);
  original.mutable_segment(0).DeleteRow(7);
  original.mutable_segment(1).DeleteRow(100);
  const std::string path = TempPath("roundtrip.bipie");
  ASSERT_TRUE(SaveTable(original, path).ok());

  auto loaded = LoadTable(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table& t = loaded.value();
  EXPECT_EQ(t.num_rows(), original.num_rows());
  EXPECT_EQ(t.num_segments(), original.num_segments());
  EXPECT_EQ(t.num_columns(), original.num_columns());
  EXPECT_EQ(t.schema()[0].name, "flag");
  EXPECT_EQ(t.segment(0).num_deleted(), 1u);
  EXPECT_EQ(t.segment(0).alive_bytes()[7], 0x00);

  // Encodings survived.
  EXPECT_EQ(t.segment(0).column(1).encoding(), Encoding::kBitPacked);
  EXPECT_EQ(t.segment(0).column(2).encoding(), Encoding::kDictionary);
  EXPECT_EQ(t.segment(0).column(3).encoding(), Encoding::kRle);
  EXPECT_EQ(t.segment(0).column(4).encoding(), Encoding::kDelta);
  EXPECT_EQ(t.segment(0).column(0).string_dictionary()->size(), 3u);

  // Decoded contents identical in every segment/column.
  for (size_t s = 0; s < t.num_segments(); ++s) {
    const size_t n = t.segment(s).num_rows();
    for (size_t c = 0; c < t.num_columns(); ++c) {
      std::vector<int64_t> a(n), b(n);
      original.segment(s).column(c).DecodeInt64(0, n, a.data());
      t.segment(s).column(c).DecodeInt64(0, n, b.data());
      ASSERT_EQ(a, b) << "segment " << s << " column " << c;
    }
  }
  std::remove(path.c_str());
}

TEST(TableIoTest, QueriesAgreeAfterReload) {
  Table original = MakeRichTable(8000, 13);
  const std::string path = TempPath("query.bipie");
  ASSERT_TRUE(SaveTable(original, path).ok());
  auto loaded = LoadTable(path);
  ASSERT_TRUE(loaded.ok());

  QuerySpec query;
  query.group_by = {"flag"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("packed"),
                      AggregateSpec::Min("dict"), AggregateSpec::Max("runs")};
  query.filters.emplace_back("packed", CompareOp::kGe, int64_t{-50});
  auto before = ExecuteQuery(original, query);
  auto after = ExecuteQuery(loaded.value(), query);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before.value().rows.size(), after.value().rows.size());
  for (size_t r = 0; r < before.value().rows.size(); ++r) {
    EXPECT_EQ(before.value().rows[r].sums, after.value().rows[r].sums);
    EXPECT_EQ(before.value().rows[r].count, after.value().rows[r].count);
  }
  std::remove(path.c_str());
}

TEST(TableIoTest, EmptyTable) {
  Table table({{"x", ColumnType::kInt64}});
  const std::string path = TempPath("empty.bipie");
  ASSERT_TRUE(SaveTable(table, path).ok());
  auto loaded = LoadTable(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_rows(), 0u);
  EXPECT_EQ(loaded.value().num_segments(), 0u);
  std::remove(path.c_str());
}

TEST(TableIoTest, MissingFileIsAnError) {
  auto loaded = LoadTable(TempPath("does-not-exist.bipie"));
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(TableIoTest, WrongMagicIsRejected) {
  const std::string path = TempPath("garbage.bipie");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOTBIPIE-and-some-extra-garbage", 1, 31, f);
  std::fclose(f);
  auto loaded = LoadTable(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TableIoTest, TruncatedFileIsRejected) {
  Table table = MakeRichTable(1000, 15);
  const std::string path = TempPath("truncated.bipie");
  ASSERT_TRUE(SaveTable(table, path).ok());
  // Truncate to the first 100 bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  char head[100];
  ASSERT_EQ(std::fread(head, 1, 100, f), 100u);
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  std::fwrite(head, 1, 100, f);
  std::fclose(f);
  auto loaded = LoadTable(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bipie
