#include "vector/selection_vector.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"

namespace bipie {
namespace {

TEST(CountSelectedTest, MatchesNaiveCountAcrossTiers) {
  for (double sel : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    auto bytes = MakeSelectionBytes(10007, sel, 42);
    size_t expected = 0;
    for (uint8_t b : bytes) expected += b != 0;
    test::ForEachIsaTier([&](IsaTier tier) {
      EXPECT_EQ(CountSelected(bytes.data(), bytes.size()), expected)
          << "sel=" << sel << " tier=" << IsaTierName(tier);
    });
  }
}

TEST(CountSelectedTest, EmptyAndTinyInputs) {
  uint8_t one = 0xFF;
  EXPECT_EQ(CountSelected(&one, 0), 0u);
  EXPECT_EQ(CountSelected(&one, 1), 1u);
  one = 0;
  EXPECT_EQ(CountSelected(&one, 1), 0u);
}

TEST(AndSelectionTest, MergesFilterWithAliveMask) {
  const size_t n = 1000;
  auto filter = MakeSelectionBytes(n, 0.7, 1);
  auto alive = MakeSelectionBytes(n, 0.9, 2);
  test::ForEachIsaTier([&](IsaTier) {
    std::vector<uint8_t> merged(n + 32);
    AndSelection(filter.data(), alive.data(), n, merged.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(merged[i], filter[i] & alive[i]);
    }
  });
}

TEST(AndSelectionTest, InPlaceOperation) {
  const size_t n = 257;
  auto a = MakeSelectionBytes(n, 0.5, 3);
  auto b = MakeSelectionBytes(n, 0.5, 4);
  auto expected = a;
  for (size_t i = 0; i < n; ++i) expected[i] &= b[i];
  AndSelection(a.data(), b.data(), n, a.data());
  EXPECT_EQ(a, expected);
}

}  // namespace
}  // namespace bipie
