#include <gtest/gtest.h>

#include <vector>

#include "storage/batch.h"
#include "storage/segment.h"
#include "storage/table.h"

namespace bipie {
namespace {

Table MakeTwoColumnTable(size_t rows, size_t segment_rows) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, segment_rows);
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({static_cast<int64_t>(i % 4), static_cast<int64_t>(i)});
  }
  app.Flush();
  return table;
}

TEST(TableTest, SegmentsAreCutAtCapacity) {
  Table table = MakeTwoColumnTable(2500, 1000);
  EXPECT_EQ(table.num_segments(), 3u);
  EXPECT_EQ(table.segment(0).num_rows(), 1000u);
  EXPECT_EQ(table.segment(1).num_rows(), 1000u);
  EXPECT_EQ(table.segment(2).num_rows(), 500u);
  EXPECT_EQ(table.num_rows(), 2500u);
}

TEST(TableTest, FindColumn) {
  Table table = MakeTwoColumnTable(10, 100);
  EXPECT_EQ(table.FindColumn("g"), 0);
  EXPECT_EQ(table.FindColumn("x"), 1);
  EXPECT_EQ(table.FindColumn("missing"), -1);
}

TEST(TableTest, RowOrderPreservedAcrossColumns) {
  Table table = MakeTwoColumnTable(1234, 500);
  size_t row = 0;
  for (size_t s = 0; s < table.num_segments(); ++s) {
    const Segment& seg = table.segment(s);
    std::vector<int64_t> g(seg.num_rows()), x(seg.num_rows());
    seg.column(0).DecodeInt64(0, seg.num_rows(), g.data());
    seg.column(1).DecodeInt64(0, seg.num_rows(), x.data());
    for (size_t i = 0; i < seg.num_rows(); ++i, ++row) {
      ASSERT_EQ(g[i], static_cast<int64_t>(row % 4));
      ASSERT_EQ(x[i], static_cast<int64_t>(row));
    }
  }
  EXPECT_EQ(row, 1234u);
}

TEST(TableTest, ChunkAppendMatchesRowAppend) {
  std::vector<int64_t> g, x;
  for (int64_t i = 0; i < 700; ++i) {
    g.push_back(i % 3);
    x.push_back(i * 7);
  }
  Table chunked({{"g"}, {"x"}});
  TableAppender app(&chunked, 256);
  app.AppendInt64Chunk({g.data(), x.data()}, g.size());
  app.Flush();
  EXPECT_EQ(chunked.num_rows(), 700u);
  EXPECT_EQ(chunked.num_segments(), 3u);  // 256 + 256 + 188

  size_t row = 0;
  for (size_t s = 0; s < chunked.num_segments(); ++s) {
    const Segment& seg = chunked.segment(s);
    std::vector<int64_t> got(seg.num_rows());
    seg.column(1).DecodeInt64(0, seg.num_rows(), got.data());
    for (size_t i = 0; i < seg.num_rows(); ++i, ++row) {
      ASSERT_EQ(got[i], x[row]);
    }
  }
}

TEST(SegmentTest, DeleteRowsBuildsAliveMask) {
  Table table = MakeTwoColumnTable(100, 100);
  Segment& seg = table.mutable_segment(0);
  EXPECT_FALSE(seg.has_deleted_rows());
  EXPECT_EQ(seg.alive_bytes(), nullptr);
  seg.DeleteRow(5);
  seg.DeleteRow(5);  // double delete counted once
  seg.DeleteRow(99);
  EXPECT_EQ(seg.num_deleted(), 2u);
  ASSERT_NE(seg.alive_bytes(), nullptr);
  EXPECT_EQ(seg.alive_bytes()[5], 0x00);
  EXPECT_EQ(seg.alive_bytes()[99], 0x00);
  EXPECT_EQ(seg.alive_bytes()[0], 0xFF);
}

TEST(SegmentTest, EliminationUsesMetadata) {
  Table table = MakeTwoColumnTable(100, 100);
  const Segment& seg = table.segment(0);
  // Column x spans [0, 99].
  EXPECT_TRUE(seg.CanEliminate(1, 200, 300));
  EXPECT_TRUE(seg.CanEliminate(1, -10, -1));
  EXPECT_FALSE(seg.CanEliminate(1, 50, 60));
  EXPECT_FALSE(seg.CanEliminate(1, 99, 200));
}

TEST(BatchCursorTest, CoversSegmentExactly) {
  Table table = MakeTwoColumnTable(10000, 10000);
  BatchCursor cursor(table.segment(0));
  BatchView view;
  size_t total = 0, batches = 0;
  while (cursor.Next(&view)) {
    EXPECT_LE(view.num_rows, kBatchRows);
    EXPECT_EQ(view.start, total);
    total += view.num_rows;
    ++batches;
  }
  EXPECT_EQ(total, 10000u);
  EXPECT_EQ(batches, (10000 + kBatchRows - 1) / kBatchRows);
}

TEST(BatchCursorTest, CustomBatchSizeAndReset) {
  Table table = MakeTwoColumnTable(10, 10);
  BatchCursor cursor(table.segment(0), 4);
  BatchView view;
  std::vector<size_t> sizes;
  while (cursor.Next(&view)) sizes.push_back(view.num_rows);
  EXPECT_EQ(sizes, (std::vector<size_t>{4, 4, 2}));
  cursor.Reset();
  ASSERT_TRUE(cursor.Next(&view));
  EXPECT_EQ(view.start, 0u);
}

TEST(BatchCursorTest, AliveBytesWindowed) {
  Table table = MakeTwoColumnTable(20, 20);
  Segment& seg = table.mutable_segment(0);
  seg.DeleteRow(13);
  BatchCursor cursor(seg, 10);
  BatchView view;
  ASSERT_TRUE(cursor.Next(&view));
  ASSERT_NE(view.alive_bytes(), nullptr);
  EXPECT_EQ(view.alive_bytes()[3], 0xFF);
  ASSERT_TRUE(cursor.Next(&view));
  EXPECT_EQ(view.alive_bytes()[3], 0x00);  // absolute row 13
}

}  // namespace
}  // namespace bipie
