#include "expr/predicate.h"

#include <gtest/gtest.h>

#include <vector>

#include "storage/column_builder.h"
#include "test_util.h"

namespace bipie {
namespace {

const CompareOp kAllOps[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                             CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};

TEST(CompareInt64Test, AllOps) {
  EXPECT_TRUE(CompareInt64(5, CompareOp::kEq, 5));
  EXPECT_FALSE(CompareInt64(5, CompareOp::kEq, 6));
  EXPECT_TRUE(CompareInt64(5, CompareOp::kNe, 6));
  EXPECT_TRUE(CompareInt64(-5, CompareOp::kLt, 0));
  EXPECT_TRUE(CompareInt64(5, CompareOp::kLe, 5));
  EXPECT_TRUE(CompareInt64(7, CompareOp::kGt, 5));
  EXPECT_TRUE(CompareInt64(5, CompareOp::kGe, 5));
  EXPECT_FALSE(CompareInt64(4, CompareOp::kGe, 5));
}

class CompareWordsSweep
    : public ::testing::TestWithParam<std::tuple<int, CompareOp>> {};

TEST_P(CompareWordsSweep, MatchesScalarSemantics) {
  const int word = std::get<0>(GetParam());
  const CompareOp op = std::get<1>(GetParam());
  const size_t n = 1037;
  AlignedBuffer values(n * word);
  Rng rng(word * 100 + static_cast<int>(op));
  const uint64_t domain = word == 8 ? 1000 : (1ULL << (word * 8));
  std::vector<uint64_t> raw(n);
  for (size_t i = 0; i < n; ++i) {
    raw[i] = rng.NextBounded(domain);
    std::memcpy(values.data() + i * word, &raw[i], word);
  }
  const uint64_t literal = rng.NextBounded(domain);
  test::ForEachIsaTier([&](IsaTier tier) {
    AlignedBuffer sel(n);
    internal::CompareUnsignedWords(values.data(), n, word, op, literal,
                                   sel.data());
    for (size_t i = 0; i < n; ++i) {
      bool expected = false;
      switch (op) {
        case CompareOp::kEq: expected = raw[i] == literal; break;
        case CompareOp::kNe: expected = raw[i] != literal; break;
        case CompareOp::kLt: expected = raw[i] < literal; break;
        case CompareOp::kLe: expected = raw[i] <= literal; break;
        case CompareOp::kGt: expected = raw[i] > literal; break;
        case CompareOp::kGe: expected = raw[i] >= literal; break;
      }
      ASSERT_EQ(sel.data()[i], expected ? 0xFF : 0x00)
          << "word=" << word << " i=" << i << " tier=" << IsaTierName(tier);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndOps, CompareWordsSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::ValuesIn(kAllOps)));

EncodedColumn MakeColumn(EncodingChoice choice, const std::vector<int64_t>& v) {
  ColumnBuilder b({"c", ColumnType::kInt64, choice});
  for (int64_t x : v) b.AppendInt64(x);
  return b.Finish();
}

class PredicateEncodings : public ::testing::TestWithParam<EncodingChoice> {};

TEST_P(PredicateEncodings, MatchesRowByRowEvaluation) {
  Rng rng(55);
  std::vector<int64_t> v(3000);
  for (auto& x : v) x = rng.NextInRange(-50, 50);
  EncodedColumn col = MakeColumn(GetParam(), v);
  for (CompareOp op : kAllOps) {
    for (int64_t literal : {-100, -50, -1, 0, 13, 50, 99}) {
      ColumnPredicate pred("c", op, literal);
      test::ForEachIsaTier([&](IsaTier) {
        AlignedBuffer sel(v.size());
        ASSERT_TRUE(pred.Evaluate(col, 0, v.size(), sel.data()).ok());
        for (size_t i = 0; i < v.size(); ++i) {
          ASSERT_EQ(sel.data()[i] != 0, CompareInt64(v[i], op, literal))
              << "op=" << static_cast<int>(op) << " lit=" << literal
              << " i=" << i;
        }
      });
    }
  }
}

TEST_P(PredicateEncodings, WindowedEvaluation) {
  std::vector<int64_t> v(500);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<int64_t>(i % 10);
  EncodedColumn col = MakeColumn(GetParam(), v);
  ColumnPredicate pred("c", CompareOp::kLt, 5);
  AlignedBuffer sel(100);
  ASSERT_TRUE(pred.Evaluate(col, 250, 100, sel.data()).ok());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(sel.data()[i] != 0, v[250 + i] < 5);
  }
}

INSTANTIATE_TEST_SUITE_P(Encodings, PredicateEncodings,
                         ::testing::Values(EncodingChoice::kBitPacked,
                                           EncodingChoice::kDictionary,
                                           EncodingChoice::kRle));

TEST_P(PredicateEncodings, BetweenMatchesRowByRow) {
  Rng rng(77);
  std::vector<int64_t> v(2500);
  for (auto& x : v) x = rng.NextInRange(-50, 50);
  EncodedColumn col = MakeColumn(GetParam(), v);
  const std::pair<int64_t, int64_t> ranges[] = {
      {-10, 10}, {-100, 100}, {40, 60}, {-60, -51}, {7, 7}, {5, -5}};
  for (const auto& [lo, hi] : ranges) {
    ColumnPredicate pred = ColumnPredicate::Between("c", lo, hi);
    test::ForEachIsaTier([&](IsaTier) {
      AlignedBuffer sel(v.size());
      ASSERT_TRUE(pred.Evaluate(col, 0, v.size(), sel.data()).ok());
      for (size_t i = 0; i < v.size(); ++i) {
        ASSERT_EQ(sel.data()[i] != 0, v[i] >= lo && v[i] <= hi)
            << "lo=" << lo << " hi=" << hi << " i=" << i;
      }
    });
  }
}

TEST(PredicateTest, BetweenSegmentElimination) {
  std::vector<int64_t> v;
  for (int64_t i = 100; i < 200; ++i) v.push_back(i);
  EncodedColumn col = MakeColumn(EncodingChoice::kBitPacked, v);
  EXPECT_TRUE(
      ColumnPredicate::Between("c", 0, 99).EliminatesSegment(col));
  EXPECT_TRUE(
      ColumnPredicate::Between("c", 200, 300).EliminatesSegment(col));
  EXPECT_FALSE(
      ColumnPredicate::Between("c", 150, 160).EliminatesSegment(col));
  EXPECT_TRUE(ColumnPredicate::Between("c", 160, 150).EliminatesSegment(col));
}

TEST(PredicateTest, StringDictionaryEquality) {
  ColumnBuilder b({"flag", ColumnType::kString});
  const char* flags[3] = {"A", "N", "R"};
  std::vector<int> raw;
  Rng rng(66);
  for (int i = 0; i < 1000; ++i) {
    const int f = static_cast<int>(rng.NextBounded(3));
    raw.push_back(f);
    b.AppendString(flags[f]);
  }
  EncodedColumn col = b.Finish();
  ColumnPredicate pred("flag", CompareOp::kEq, std::string("N"));
  AlignedBuffer sel(1000);
  ASSERT_TRUE(pred.Evaluate(col, 0, 1000, sel.data()).ok());
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(sel.data()[i] != 0, std::string(flags[raw[i]]) == "N");
  }
}

TEST(PredicateTest, SegmentElimination) {
  std::vector<int64_t> v;
  for (int64_t i = 100; i < 200; ++i) v.push_back(i);
  EncodedColumn col = MakeColumn(EncodingChoice::kBitPacked, v);
  EXPECT_TRUE(ColumnPredicate("c", CompareOp::kLt, 100).EliminatesSegment(col));
  EXPECT_FALSE(ColumnPredicate("c", CompareOp::kLt, 101).EliminatesSegment(col));
  EXPECT_TRUE(ColumnPredicate("c", CompareOp::kGt, 199).EliminatesSegment(col));
  EXPECT_TRUE(ColumnPredicate("c", CompareOp::kEq, 500).EliminatesSegment(col));
  EXPECT_FALSE(ColumnPredicate("c", CompareOp::kEq, 150).EliminatesSegment(col));
  EXPECT_TRUE(ColumnPredicate("c", CompareOp::kLe, 99).EliminatesSegment(col));
  EXPECT_FALSE(ColumnPredicate("c", CompareOp::kNe, 0).EliminatesSegment(col));
}

TEST(PredicateTest, LiteralOutsideDomainShortCircuits) {
  std::vector<int64_t> v = {10, 20, 30};
  EncodedColumn col = MakeColumn(EncodingChoice::kBitPacked, v);
  AlignedBuffer sel(3);
  // literal below base: every row is > literal.
  ColumnPredicate gt("c", CompareOp::kGt, -5);
  ASSERT_TRUE(gt.Evaluate(col, 0, 3, sel.data()).ok());
  EXPECT_EQ(sel.data()[0], 0xFF);
  EXPECT_EQ(sel.data()[2], 0xFF);
  // literal above max: no row is >= literal.
  ColumnPredicate ge("c", CompareOp::kGe, 100);
  ASSERT_TRUE(ge.Evaluate(col, 0, 3, sel.data()).ok());
  EXPECT_EQ(sel.data()[0], 0x00);
}

}  // namespace
}  // namespace bipie
