// MemoryTracker unit semantics (DESIGN.md §13): chain charging with full
// rollback, hard/soft limits, peak accounting, thread-current binding, and
// the AlignedBuffer charge/release + re-home contract.
#include "common/memory_tracker.h"

#include <gtest/gtest.h>

#include "common/aligned_buffer.h"
#include "common/status.h"

namespace bipie {
namespace {

TEST(MemoryTrackerTest, ChargeReleasePeak) {
  MemoryTracker tracker(nullptr, "test");
  EXPECT_EQ(tracker.used(), 0u);
  EXPECT_TRUE(tracker.TryCharge(100));
  EXPECT_EQ(tracker.used(), 100u);
  EXPECT_EQ(tracker.peak(), 100u);
  EXPECT_TRUE(tracker.TryCharge(50));
  EXPECT_EQ(tracker.used(), 150u);
  tracker.Release(120);
  EXPECT_EQ(tracker.used(), 30u);
  EXPECT_EQ(tracker.peak(), 150u);  // peak is monotone until reset
  tracker.ResetPeak();
  EXPECT_EQ(tracker.peak(), 30u);
  tracker.Release(30);
  EXPECT_EQ(tracker.used(), 0u);
}

TEST(MemoryTrackerTest, HardLimitFailsChargeAndLeavesAccountIntact) {
  MemoryTracker tracker(nullptr, "test");
  tracker.set_hard_limit(100);
  EXPECT_TRUE(tracker.TryCharge(80));
  EXPECT_FALSE(tracker.TryCharge(21));
  EXPECT_EQ(tracker.used(), 80u);  // failed charge left no residue
  EXPECT_TRUE(tracker.TryCharge(20));
  EXPECT_EQ(tracker.used(), 100u);
  tracker.Release(100);
}

TEST(MemoryTrackerTest, ChainChargesEveryAncestorWithRollback) {
  MemoryTracker root(nullptr, "root");
  MemoryTracker mid(&root, "mid");
  MemoryTracker leaf(&mid, "leaf");
  root.set_hard_limit(100);

  EXPECT_TRUE(leaf.TryCharge(60));
  EXPECT_EQ(leaf.used(), 60u);
  EXPECT_EQ(mid.used(), 60u);
  EXPECT_EQ(root.used(), 60u);

  // The root's limit fails the charge; the leaf and mid accounts (already
  // charged when the walk reached the root) must be rolled back.
  EXPECT_FALSE(leaf.TryCharge(50));
  EXPECT_EQ(leaf.used(), 60u);
  EXPECT_EQ(mid.used(), 60u);
  EXPECT_EQ(root.used(), 60u);

  leaf.Release(60);
  EXPECT_EQ(leaf.used(), 0u);
  EXPECT_EQ(mid.used(), 0u);
  EXPECT_EQ(root.used(), 0u);
}

TEST(MemoryTrackerTest, SoftLimitLatchesWithoutFailing) {
  MemoryTracker tracker(nullptr, "test");
  tracker.set_soft_limit(100);
  EXPECT_TRUE(tracker.TryCharge(90));
  EXPECT_FALSE(tracker.soft_limit_exceeded());
  EXPECT_TRUE(tracker.TryCharge(20));  // crosses the soft limit: succeeds
  EXPECT_TRUE(tracker.soft_limit_exceeded());
  tracker.Release(110);
  EXPECT_TRUE(tracker.soft_limit_exceeded());  // latched, not level-based
  tracker.reset_soft_limit_exceeded();
  EXPECT_FALSE(tracker.soft_limit_exceeded());
}

TEST(MemoryTrackerTest, ForceChargeIgnoresLimits) {
  MemoryTracker tracker(nullptr, "test");
  tracker.set_hard_limit(10);
  tracker.ForceCharge(100);
  EXPECT_EQ(tracker.used(), 100u);
  EXPECT_EQ(tracker.peak(), 100u);
  tracker.Release(100);
}

TEST(MemoryTrackerTest, CurrentDefaultsToProcessRoot) {
  EXPECT_EQ(CurrentMemoryTracker(), &MemoryTracker::Process());
  MemoryTracker query(&MemoryTracker::Process(), "query");
  {
    MemoryTrackerScope scope(&query);
    EXPECT_EQ(CurrentMemoryTracker(), &query);
    {
      MemoryTrackerScope null_scope(nullptr);  // no-op, binding unchanged
      EXPECT_EQ(CurrentMemoryTracker(), &query);
    }
    EXPECT_EQ(CurrentMemoryTracker(), &query);
  }
  EXPECT_EQ(CurrentMemoryTracker(), &MemoryTracker::Process());
}

TEST(MemoryTrackerTest, AlignedBufferChargesBoundTrackerAndReleasesOnFree) {
  MemoryTracker query(&MemoryTracker::Process(), "query");
  AlignedBuffer buf;
  {
    MemoryTrackerScope scope(&query);
    buf.Resize(10000);
  }
  EXPECT_GE(query.used(), 10000u);
  EXPECT_EQ(buf.charged_tracker(), &query);
  EXPECT_EQ(query.used(), buf.charged_bytes());
  buf.Free();
  EXPECT_EQ(query.used(), 0u);
  EXPECT_EQ(buf.charged_tracker(), nullptr);
}

TEST(MemoryTrackerTest, AlignedBufferHardLimitMakesTryResizeFail) {
  MemoryTracker query(&MemoryTracker::Process(), "query");
  query.set_hard_limit(4096);
  MemoryTrackerScope scope(&query);
  AlignedBuffer buf;
  EXPECT_FALSE(buf.TryResize(1 << 20));
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(query.used(), 0u);
  EXPECT_TRUE(buf.TryResize(1024));
  EXPECT_THROW(buf.Resize(1 << 20), std::bad_alloc);
  EXPECT_EQ(buf.size(), 1024u);  // failed grow leaves the buffer unchanged
  buf.Free();
  EXPECT_EQ(query.used(), 0u);
}

TEST(MemoryTrackerTest, RetainedCapacityRehomesOnReuse) {
  MemoryTracker a(&MemoryTracker::Process(), "a");
  MemoryTracker b(&MemoryTracker::Process(), "b");
  AlignedBuffer buf;
  {
    MemoryTrackerScope scope(&a);
    buf.Resize(8192);
  }
  const size_t charged = buf.charged_bytes();
  EXPECT_EQ(a.used(), charged);
  {
    // Shrinking reuse under another tracker: no allocation happens, but the
    // retained capacity must follow the thread-current tracker.
    MemoryTrackerScope scope(&b);
    buf.Resize(64);
  }
  EXPECT_EQ(buf.charged_tracker(), &b);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(b.used(), charged);
  buf.Free();
  EXPECT_EQ(b.used(), 0u);
}

TEST(MemoryTrackerTest, MoveChargeToTransfersWithoutLimitCheck) {
  MemoryTracker a(&MemoryTracker::Process(), "a");
  MemoryTracker b(&MemoryTracker::Process(), "b");
  b.set_hard_limit(1);  // ForceCharge path must ignore this
  AlignedBuffer buf;
  {
    MemoryTrackerScope scope(&a);
    buf.Resize(4096);
  }
  const size_t charged = buf.charged_bytes();
  buf.MoveChargeTo(b);
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(b.used(), charged);
  EXPECT_EQ(buf.charged_tracker(), &b);
  buf.Free();
  EXPECT_EQ(b.used(), 0u);
}

TEST(MemoryTrackerTest, MoveAssignTransfersCharge) {
  MemoryTracker a(&MemoryTracker::Process(), "a");
  AlignedBuffer src;
  {
    MemoryTrackerScope scope(&a);
    src.Resize(2048);
  }
  const size_t charged = src.charged_bytes();
  AlignedBuffer dst;
  dst = std::move(src);
  EXPECT_EQ(a.used(), charged);  // charge moved, not duplicated or dropped
  EXPECT_EQ(dst.charged_tracker(), &a);
  EXPECT_EQ(src.charged_tracker(), nullptr);
  dst.Free();
  EXPECT_EQ(a.used(), 0u);
}

TEST(MemoryTrackerTest, ShrinkToFitReturnsExcessCharge) {
  MemoryTracker a(&MemoryTracker::Process(), "a");
  MemoryTrackerScope scope(&a);
  AlignedBuffer buf;
  buf.Resize(1 << 20);
  buf.data()[0] = 42;
  const size_t big = buf.charged_bytes();
  buf.Resize(128);  // logical shrink retains capacity
  EXPECT_EQ(buf.charged_bytes(), big);
  buf.ShrinkToFit();
  EXPECT_LT(buf.charged_bytes(), big);
  EXPECT_EQ(a.used(), buf.charged_bytes());
  EXPECT_EQ(buf.size(), 128u);
  EXPECT_EQ(buf.data()[0], 42);  // contents survive the shrink
  buf.Free();
  EXPECT_EQ(a.used(), 0u);
}

TEST(MemoryTrackerTest, ThreadScratchRehomesToProcessRootOnScopeExit) {
  // Thread-local scratch registered with the re-home list must never keep a
  // charge against a tracker whose scope has exited.
  static thread_local AlignedBuffer scratch;
  static thread_local const bool registered = [] {
    RegisterThreadScratchBuffer(&scratch);
    return true;
  }();
  (void)registered;

  MemoryTracker query(&MemoryTracker::Process(), "query");
  {
    MemoryTrackerScope scope(&query);
    scratch.Resize(16384);
    EXPECT_EQ(scratch.charged_tracker(), &query);
  }
  EXPECT_EQ(query.used(), 0u);
  EXPECT_EQ(scratch.charged_tracker(), &MemoryTracker::Process());
  scratch.Free();
}

TEST(MemoryTrackerTest, ReservationChargesDeltasAndReleasesOnReset) {
  MemoryTracker query(&MemoryTracker::Process(), "query");
  MemoryTrackerScope scope(&query);
  MemoryReservation reservation;
  EXPECT_TRUE(reservation.Update(1000).ok());
  EXPECT_EQ(query.used(), 1000u);
  EXPECT_TRUE(reservation.Update(2500).ok());
  EXPECT_EQ(query.used(), 2500u);
  EXPECT_TRUE(reservation.Update(500).ok());  // shrink always succeeds
  EXPECT_EQ(query.used(), 500u);
  reservation.Reset();
  EXPECT_EQ(query.used(), 0u);
}

TEST(MemoryTrackerTest, ReservationHardLimitReturnsResourceExhausted) {
  MemoryTracker query(&MemoryTracker::Process(), "query");
  query.set_hard_limit(1024);
  MemoryTrackerScope scope(&query);
  MemoryReservation reservation;
  EXPECT_TRUE(reservation.Update(512).ok());
  const Status grow = reservation.Update(4096);
  EXPECT_EQ(grow.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(reservation.bytes(), 512u);  // kept its previous size
  EXPECT_EQ(query.used(), 512u);
}

}  // namespace
}  // namespace bipie
