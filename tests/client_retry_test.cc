// Client-side resilience (DESIGN.md §15): bounded socket timeouts, the
// kUnavailable-only retry loop with reconnect + settings replay, backoff
// honoring server retry-after hints, and the client-wide retry budget.
// Failpoint-driven cases compile away to skips without
// BIPIE_ENABLE_FAILPOINTS.
#include "server/client.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/failpoint.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/table.h"

namespace bipie {
namespace {

using server::Client;
using server::ClientOptions;
using server::Server;
using server::ServerOptions;

Table MakeSmallTable(size_t rows = 2000) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"v", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 1024);
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({static_cast<int64_t>(i % 4), static_cast<int64_t>(i % 7)});
  }
  app.Flush();
  return table;
}

TEST(ClientRetryTest, ConnectionRefusedIsUnavailable) {
  // Grab a port the OS just released: start a server, note the port, shut
  // it down. Connecting there now is refused, which the client reports as
  // kUnavailable (a transport failure), promptly — not a hang.
  uint16_t dead_port;
  {
    Server server(ServerOptions{});
    ASSERT_TRUE(server.Start().ok());
    dead_port = server.port();
  }
  ClientOptions options;
  options.connect_timeout_ms = 2000;
  Client client(options);
  auto start = std::chrono::steady_clock::now();
  Status st = client.Connect("127.0.0.1", dead_port);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_LT(elapsed.count(), 2000);
  EXPECT_FALSE(client.connected());
}

TEST(ClientRetryTest, RecvTimeoutBoundsAStalledServer) {
  // A server that holds the query forever costs the caller exactly the
  // recv timeout, surfaced as kUnavailable — the old blocking client hung
  // here until the server answered.
  Table table = MakeSmallTable();
  std::atomic<bool> release{false};
  ServerOptions options;
  options.before_execute_hook = [&release](QueryContext*) {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.recv_timeout_ms = 200;
  Client client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  auto start = std::chrono::steady_clock::now();
  QueryResult result;
  Status st = client.Query("SELECT count(*) FROM t", &result);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_GE(elapsed.count(), 200);
  EXPECT_LT(elapsed.count(), 5000);

  release.store(true);  // let the parked worker finish before Shutdown
}

TEST(ClientRetryTest, ShedRejectionCarriesRetryAfterAndIsRetried) {
  // A shed rejection is remote kUnavailable: the client retries it without
  // reconnecting, waiting at least the server's retry-after hint. Under
  // sustained pressure every retry sheds too, so the final status is still
  // kUnavailable with the hint recorded and the retries spent.
  Table table = MakeSmallTable();
  ServerOptions options;
  options.soft_memory_limit_bytes = 1;  // below the table: always degraded
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.max_retries = 2;
  copts.backoff_initial_ms = 1;
  copts.backoff_max_ms = 10;
  Client client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Set("priority", "low").ok());

  auto start = std::chrono::steady_clock::now();
  QueryResult result;
  Status st = client.Query("SELECT count(*) FROM t", &result);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_EQ(client.retries_spent(), 2u);
  EXPECT_GT(client.last_retry_after_ms(), 0u);
  // Two retries, each waiting at least the (200ms memory-shed) hint.
  EXPECT_GE(elapsed.count(), 2 * 200);

  // The connection survived all three rejections (server-sent errors keep
  // the stream synchronized): the session works again off the low band.
  ASSERT_TRUE(client.Set("priority", "normal").ok());
  st = client.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows[0].count, 2000u);
}

#if defined(BIPIE_ENABLE_FAILPOINTS)

TEST(ClientRetryTest, TransportFailureReconnectsAndReplaysSettings) {
  // Kill the first attempt's recv with a failpoint: the retry must
  // reconnect and replay the recorded session settings before resending.
  // The replayed 1-byte memory limit proves it — a *fresh* session would
  // have run the query fine; the retried one fails with the session's
  // kResourceExhausted.
  Table table = MakeSmallTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.max_retries = 3;
  copts.backoff_initial_ms = 1;
  copts.backoff_max_ms = 10;
  Client client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.Set("memory_limit_bytes", "1").ok());

  Failpoints::FailOnce("client/recv_fail");
  QueryResult result;
  Status st =
      client.Query("SELECT g, count(*), sum(v) FROM t GROUP BY g", &result);
  Failpoints::Deactivate("client/recv_fail");
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  EXPECT_EQ(client.retries_spent(), 1u);

  // Lift the limit (on the reconnected session) and the query runs.
  ASSERT_TRUE(client.Set("memory_limit_bytes", "0").ok());
  st = client.Query("SELECT g, count(*), sum(v) FROM t GROUP BY g", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows.size(), 4u);
}

TEST(ClientRetryTest, RetryStopsAtPerCallCap) {
  // Every reconnect fails: the call burns exactly max_retries retries and
  // returns the last kUnavailable instead of looping.
  Table table = MakeSmallTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.max_retries = 2;
  copts.backoff_initial_ms = 1;
  copts.backoff_max_ms = 5;
  copts.connect_timeout_ms = 500;
  Client client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  Failpoints::FailEveryN("client/send_fail", 1);
  QueryResult result;
  Status st = client.Query("SELECT count(*) FROM t", &result);
  Failpoints::Deactivate("client/send_fail");
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_EQ(client.retries_spent(), 2u);

  // With the fault gone the same client recovers on the next call.
  st = client.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows[0].count, 2000u);
}

TEST(ClientRetryTest, RetryBudgetIsClientWide) {
  // The per-client budget caps total retries across calls: two calls with
  // max_retries=4 against a dead transport spend at most budget=3 retries
  // between them, then fail fast.
  Table table = MakeSmallTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions copts;
  copts.max_retries = 4;
  copts.retry_budget = 3;
  copts.backoff_initial_ms = 1;
  copts.backoff_max_ms = 5;
  Client client(copts);
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  Failpoints::FailEveryN("client/send_fail", 1);
  QueryResult result;
  EXPECT_EQ(client.Query("SELECT count(*) FROM t", &result).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(client.Query("SELECT count(*) FROM t", &result).code(),
            StatusCode::kUnavailable);
  Failpoints::Deactivate("client/send_fail");
  EXPECT_EQ(client.retries_spent(), 3u);
}

#else

TEST(ClientRetryTest, FailpointCasesSkippedWithoutFailpoints) {
  GTEST_SKIP() << "built without BIPIE_ENABLE_FAILPOINTS";
}

#endif  // BIPIE_ENABLE_FAILPOINTS

}  // namespace
}  // namespace bipie
