#include "vector/compact.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "test_util.h"

namespace bipie {
namespace {

// Selectivity sweep shared by the parameterized suites.
const double kSelectivities[] = {0.0, 0.02, 0.1, 0.38, 0.5, 0.9, 0.98, 1.0};

size_t CountSelectedNaive(const std::vector<uint8_t>& sel) {
  size_t c = 0;
  for (uint8_t b : sel) c += b != 0;
  return c;
}

class CompactIndexVector : public ::testing::TestWithParam<double> {};

TEST_P(CompactIndexVector, MatchesScalarReference) {
  const double selectivity = GetParam();
  const size_t n = 4099;  // deliberately not a multiple of 8
  auto sel = MakeSelectionBytes(n, selectivity, 1234);
  AlignedBuffer expected_buf((n + 8) * sizeof(uint32_t));
  const size_t expected_count = internal::CompactToIndexVectorScalar(
      sel.data(), n, 0, expected_buf.data_as<uint32_t>());
  test::ForEachIsaTier([&](IsaTier tier) {
    AlignedBuffer out((n + 8) * sizeof(uint32_t));
    const size_t count = CompactToIndexVector(sel.data(), n,
                                              out.data_as<uint32_t>());
    ASSERT_EQ(count, expected_count) << IsaTierName(tier);
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out.data_as<uint32_t>()[i],
                expected_buf.data_as<uint32_t>()[i])
          << "i=" << i << " tier=" << IsaTierName(tier);
    }
  });
}

TEST_P(CompactIndexVector, EmittedPositionsAreSelectedAndAscending) {
  const size_t n = 777;
  auto sel = MakeSelectionBytes(n, GetParam(), 99);
  AlignedBuffer out((n + 8) * sizeof(uint32_t));
  const size_t count =
      CompactToIndexVector(sel.data(), n, out.data_as<uint32_t>());
  const uint32_t* idx = out.data_as<uint32_t>();
  for (size_t i = 0; i < count; ++i) {
    ASSERT_EQ(sel[idx[i]], 0xFF);
    if (i > 0) ASSERT_LT(idx[i - 1], idx[i]);
  }
  EXPECT_EQ(count, CountSelectedNaive(sel));
}

INSTANTIATE_TEST_SUITE_P(Selectivities, CompactIndexVector,
                         ::testing::ValuesIn(kSelectivities));

TEST(CompactIndexVectorTest, BaseOffsetApplied) {
  auto sel = MakeSelectionBytes(100, 0.5, 7);
  AlignedBuffer a((100 + 8) * sizeof(uint32_t));
  AlignedBuffer b((100 + 8) * sizeof(uint32_t));
  const size_t ca = CompactToIndexVector(sel.data(), 100, 0,
                                         a.data_as<uint32_t>());
  const size_t cb = CompactToIndexVector(sel.data(), 100, 5000,
                                         b.data_as<uint32_t>());
  ASSERT_EQ(ca, cb);
  for (size_t i = 0; i < ca; ++i) {
    EXPECT_EQ(b.data_as<uint32_t>()[i], a.data_as<uint32_t>()[i] + 5000);
  }
}

class CompactValuesSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(CompactValuesSweep, MatchesScalarReference) {
  const int elem_bytes = std::get<0>(GetParam());
  const double selectivity = std::get<1>(GetParam());
  const size_t n = 2053;
  auto sel = MakeSelectionBytes(n, selectivity, 555);
  // Random raw bytes as element payloads.
  AlignedBuffer values(n * elem_bytes);
  Rng rng(91);
  for (size_t i = 0; i < values.size(); ++i) {
    values.data()[i] = static_cast<uint8_t>(rng.Next());
  }
  AlignedBuffer expected(n * elem_bytes);
  const size_t expected_count = internal::CompactValuesScalar(
      sel.data(), values.data(), n, elem_bytes, expected.data());
  test::ForEachIsaTier([&](IsaTier tier) {
    AlignedBuffer out(n * elem_bytes);
    const size_t count =
        CompactValues(sel.data(), values.data(), n, elem_bytes, out.data());
    ASSERT_EQ(count, expected_count)
        << "elem=" << elem_bytes << " tier=" << IsaTierName(tier);
    ASSERT_EQ(std::memcmp(out.data(), expected.data(), count * elem_bytes), 0)
        << "elem=" << elem_bytes << " sel=" << selectivity << " tier="
        << IsaTierName(tier);
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllWidthsAndSelectivities, CompactValuesSweep,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::ValuesIn(kSelectivities)));

TEST(CompactValuesTest, PreservesValueOrder) {
  const size_t n = 64;
  std::vector<uint32_t> values(n);
  for (size_t i = 0; i < n; ++i) values[i] = static_cast<uint32_t>(i * 10);
  std::vector<uint8_t> sel(n, 0x00);
  sel[3] = sel[5] = sel[40] = sel[63] = 0xFF;
  AlignedBuffer out((n + 8) * 4);
  const size_t count =
      CompactValues(sel.data(), values.data(), n, 4, out.data());
  ASSERT_EQ(count, 4u);
  EXPECT_EQ(out.data_as<uint32_t>()[0], 30u);
  EXPECT_EQ(out.data_as<uint32_t>()[1], 50u);
  EXPECT_EQ(out.data_as<uint32_t>()[2], 400u);
  EXPECT_EQ(out.data_as<uint32_t>()[3], 630u);
}

TEST(CompactValuesTest, EmptyInput) {
  uint32_t v = 0;
  AlignedBuffer out(64);
  EXPECT_EQ(CompactValues(nullptr, &v, 0, 4, out.data()), 0u);
}

// ---------------------------------------------------------------------------
// Tail and boundary coverage at every ISA tier. The SIMD kernels stride 4
// (AVX2 8-byte LUT), 8 (AVX2 4-byte LUT, AVX-512 64-bit compress) or 16
// (AVX-512 32-bit compress) selection bytes per step, so every residue class
// of those strides — and lengths too short to enter any main loop — must hit
// the scalar tail correctly.
// ---------------------------------------------------------------------------

const size_t kBoundaryLengths[] = {0, 1, 2,  3,  4,  5,  6,  7, 8,
                                   9, 12, 15, 17, 23, 31, 33, 41};

// Masks that stress the tails hardest: nothing selected, everything
// selected, and an alternating pattern that differs in every lane.
std::vector<std::vector<uint8_t>> BoundaryMasks(size_t n) {
  std::vector<std::vector<uint8_t>> masks;
  masks.emplace_back(n, uint8_t{0x00});
  masks.emplace_back(n, uint8_t{0xFF});
  std::vector<uint8_t> alternating(n);
  for (size_t i = 0; i < n; ++i) alternating[i] = i % 2 ? 0xFF : 0x00;
  masks.push_back(std::move(alternating));
  return masks;
}

TEST(CompactBoundary, IndexVectorTailsEveryTier) {
  for (size_t n : kBoundaryLengths) {
    for (const auto& sel : BoundaryMasks(n)) {
      // Independent naive reference (not the kernel's own scalar tail).
      std::vector<uint32_t> expected;
      for (size_t i = 0; i < n; ++i) {
        if (sel[i] == 0xFF) expected.push_back(static_cast<uint32_t>(i));
      }
      test::ForEachIsaTier([&](IsaTier tier) {
        AlignedBuffer out((n + 16) * sizeof(uint32_t));
        const size_t count = CompactToIndexVector(
            n == 0 ? nullptr : sel.data(), n, out.data_as<uint32_t>());
        ASSERT_EQ(count, expected.size())
            << "n=" << n << " tier=" << IsaTierName(tier);
        for (size_t i = 0; i < count; ++i) {
          ASSERT_EQ(out.data_as<uint32_t>()[i], expected[i])
              << "n=" << n << " i=" << i << " tier=" << IsaTierName(tier);
        }
      });
    }
  }
}

TEST(CompactBoundary, ValueTailsEveryWidthAndTier) {
  for (size_t n : kBoundaryLengths) {
    for (const auto& sel : BoundaryMasks(n)) {
      for (int elem_bytes : {1, 2, 4, 8}) {
        AlignedBuffer values(n * elem_bytes + 8);
        Rng rng(1000 + n);
        for (size_t i = 0; i < values.size(); ++i) {
          values.data()[i] = static_cast<uint8_t>(rng.Next());
        }
        std::vector<uint8_t> expected;
        for (size_t i = 0; i < n; ++i) {
          if (sel[i] != 0xFF) continue;
          for (int b = 0; b < elem_bytes; ++b) {
            expected.push_back(values.data()[i * elem_bytes + b]);
          }
        }
        test::ForEachIsaTier([&](IsaTier tier) {
          AlignedBuffer out(n * elem_bytes + 64);
          const size_t count =
              CompactValues(n == 0 ? nullptr : sel.data(), values.data(), n,
                            elem_bytes, out.data());
          ASSERT_EQ(count * elem_bytes, expected.size())
              << "n=" << n << " elem=" << elem_bytes
              << " tier=" << IsaTierName(tier);
          if (!expected.empty()) {
            ASSERT_EQ(
                std::memcmp(out.data(), expected.data(), expected.size()), 0)
                << "n=" << n << " elem=" << elem_bytes
                << " tier=" << IsaTierName(tier);
          }
        });
      }
    }
  }
}

TEST(CompactBoundary, BaseNearUint32Max) {
  // Row ids are uint32; a segment whose batch starts near the top of that
  // range must not wrap in the SIMD id-materialization (iota + base).
  const size_t n = 41;
  const uint32_t base = UINT32_MAX - static_cast<uint32_t>(n) + 1;
  auto sel = MakeSelectionBytes(n, 0.5, 4242);
  std::vector<uint32_t> expected;
  for (size_t i = 0; i < n; ++i) {
    if (sel[i] == 0xFF) expected.push_back(base + static_cast<uint32_t>(i));
  }
  test::ForEachIsaTier([&](IsaTier tier) {
    AlignedBuffer out((n + 16) * sizeof(uint32_t));
    const size_t count =
        CompactToIndexVector(sel.data(), n, base, out.data_as<uint32_t>());
    ASSERT_EQ(count, expected.size()) << IsaTierName(tier);
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out.data_as<uint32_t>()[i], expected[i])
          << "i=" << i << " tier=" << IsaTierName(tier);
    }
  });
}

}  // namespace
}  // namespace bipie
