#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/aligned_buffer.h"
#include "common/status.h"
#include "core/scan.h"
#include "storage/table.h"
#include "storage/table_io.h"

namespace bipie {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DeactivateAll(); }
};

TEST_F(FailpointTest, UnarmedPointNeverFires) {
  EXPECT_FALSE(Failpoints::Evaluate("test/unarmed"));
  EXPECT_FALSE(Failpoints::Evaluate("test/unarmed"));
  EXPECT_EQ(Failpoints::HitCount("test/unarmed"), 0u);
}

TEST_F(FailpointTest, FailOnceFiresExactlyOnce) {
  Failpoints::FailOnce("test/once");
  EXPECT_TRUE(Failpoints::Evaluate("test/once"));
  EXPECT_FALSE(Failpoints::Evaluate("test/once"));
  EXPECT_FALSE(Failpoints::Evaluate("test/once"));
  EXPECT_EQ(Failpoints::HitCount("test/once"), 3u);
}

TEST_F(FailpointTest, FailEveryNFiresOnMultiples) {
  Failpoints::FailEveryN("test/every3", 3);
  int fired = 0;
  for (int i = 1; i <= 9; ++i) {
    if (Failpoints::Evaluate("test/every3")) {
      ++fired;
      EXPECT_EQ(i % 3, 0) << "fired off-cycle at evaluation " << i;
    }
  }
  EXPECT_EQ(fired, 3);
}

TEST_F(FailpointTest, ProbabilityIsSeededAndDeterministic) {
  auto pattern = [](uint64_t seed) {
    Failpoints::FailWithProbability("test/prob", 0.5, seed);
    std::string bits;
    for (int i = 0; i < 64; ++i) {
      bits += Failpoints::Evaluate("test/prob") ? '1' : '0';
    }
    return bits;
  };
  const std::string a = pattern(42);
  const std::string b = pattern(42);
  const std::string c = pattern(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // astronomically unlikely to collide
  EXPECT_NE(a.find('1'), std::string::npos);
  EXPECT_NE(a.find('0'), std::string::npos);

  // p = 0 never fires; p = 1 always fires.
  Failpoints::FailWithProbability("test/prob", 0.0, 7);
  for (int i = 0; i < 32; ++i) EXPECT_FALSE(Failpoints::Evaluate("test/prob"));
  Failpoints::FailWithProbability("test/prob", 1.0, 7);
  for (int i = 0; i < 32; ++i) EXPECT_TRUE(Failpoints::Evaluate("test/prob"));
}

TEST_F(FailpointTest, DeactivateDisarms) {
  Failpoints::FailEveryN("test/off", 1);
  EXPECT_TRUE(Failpoints::Evaluate("test/off"));
  Failpoints::Deactivate("test/off");
  EXPECT_FALSE(Failpoints::Evaluate("test/off"));
}

TEST_F(FailpointTest, ActiveNamesListsArmedPoints) {
  EXPECT_TRUE(Failpoints::ActiveNames().empty());
  Failpoints::FailOnce("test/b");
  Failpoints::FailOnce("test/a");
  const auto names = Failpoints::ActiveNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "test/a");
  EXPECT_EQ(names[1], "test/b");
}

TEST_F(FailpointTest, ScopedFailpointDisarmsOnExit) {
  {
    ScopedFailpoint fp("test/scoped", uint64_t{1});
    EXPECT_TRUE(Failpoints::Evaluate("test/scoped"));
  }
  EXPECT_FALSE(Failpoints::Evaluate("test/scoped"));
}

#if defined(BIPIE_ENABLE_FAILPOINTS)

// --- Wiring tests: the sites below only exist in failpoint builds. --------

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Table MakeSmallTable() {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"v", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 512);
  for (int i = 0; i < 2000; ++i) {
    app.AppendRow({i % 4, i});
  }
  app.Flush();
  return table;
}

TEST_F(FailpointTest, WriteFailureSurfacesAsError) {
  Table table = MakeSmallTable();
  const std::string path = TempPath("fp_write.bipie");
  Failpoints::FailOnce("table_io/write_fail");
  const Status st = SaveTable(table, path);
  EXPECT_FALSE(st.ok());
  EXPECT_GT(Failpoints::HitCount("table_io/write_fail"), 0u);
  std::remove(path.c_str());
}

TEST_F(FailpointTest, ShortReadSurfacesAsDataLoss) {
  Table table = MakeSmallTable();
  const std::string path = TempPath("fp_read.bipie");
  ASSERT_TRUE(SaveTable(table, path).ok());
  Failpoints::FailOnce("table_io/read_short");
  auto loaded = LoadTable(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST_F(FailpointTest, ForcedChecksumMismatchIsDataLoss) {
  Table table = MakeSmallTable();
  const std::string path = TempPath("fp_crc.bipie");
  ASSERT_TRUE(SaveTable(table, path).ok());
  Failpoints::FailOnce("table_io/checksum_mismatch");
  auto loaded = LoadTable(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  // With verification off the forced mismatch is never evaluated.
  Failpoints::FailOnce("table_io/checksum_mismatch");
  LoadOptions no_verify;
  no_verify.verify_checksums = false;
  EXPECT_TRUE(LoadTable(path, no_verify).ok());
  std::remove(path.c_str());
}

TEST_F(FailpointTest, AllocationFailpointFailsTryResize) {
  AlignedBuffer buf;
  Failpoints::FailOnce("aligned_buffer/alloc_fail");
  EXPECT_FALSE(buf.TryResize(1024));
  EXPECT_TRUE(buf.TryResize(1024));
  EXPECT_EQ(buf.size(), 1024u);
}

// With scratch allocation failing on every morsel, the scan must return a
// clean kResourceExhausted — complete-or-error, never partial aggregates.
TEST_F(FailpointTest, ScanScratchFailureIsResourceExhaustedNeverPartial) {
  Table table = MakeSmallTable();
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("v")};
  query.filters.emplace_back("v", CompareOp::kGe, int64_t{100});

  auto expected = ExecuteQuery(table, query);
  ASSERT_TRUE(expected.ok());

  for (size_t num_threads : {size_t{0}, size_t{1}, size_t{3}}) {
    Failpoints::FailEveryN("scan/morsel_scratch_alloc", 1);
    ScanOptions options;
    options.num_threads = num_threads;
    auto result = ExecuteQuery(table, query, options);
    ASSERT_FALSE(result.ok()) << "num_threads=" << num_threads;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
    Failpoints::Deactivate("scan/morsel_scratch_alloc");

    // Intermittent failure: every result that does come back is complete.
    Failpoints::FailEveryN("scan/morsel_scratch_alloc", 2);
    for (int attempt = 0; attempt < 4; ++attempt) {
      auto r = ExecuteQuery(table, query, options);
      if (!r.ok()) {
        EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
        continue;
      }
      ASSERT_EQ(r.value().rows.size(), expected.value().rows.size());
      for (size_t i = 0; i < r.value().rows.size(); ++i) {
        EXPECT_EQ(r.value().rows[i].count, expected.value().rows[i].count);
        EXPECT_EQ(r.value().rows[i].sums, expected.value().rows[i].sums);
      }
    }
    Failpoints::Deactivate("scan/morsel_scratch_alloc");
  }
}

#endif  // BIPIE_ENABLE_FAILPOINTS

}  // namespace
}  // namespace bipie
