// Unit tests for the observability layer (DESIGN.md §12): counter
// registry + snapshots/deltas, the streaming JSON writer, and the trace
// buffer/export pipeline. The trace infrastructure is always compiled
// (only the macro *sites* are gated on BIPIE_ENABLE_TRACING), so these run
// in every build configuration.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bipie::obs {
namespace {

TEST(MetricsTest, GetReturnsSameCounterForSameName) {
  Counter& a = Counter::Get("test.same_name");
  Counter& b = Counter::Get("test.same_name");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.same_name");
}

TEST(MetricsTest, AddAndSnapshotRoundTrip) {
  Counter& c = Counter::Get("test.round_trip");
  const uint64_t before = c.value();
  c.Add(41);
  c.Increment();
  EXPECT_EQ(c.value(), before + 42);
  const MetricsSnapshot snap = SnapshotMetrics();
  EXPECT_EQ(snap.ValueOf("test.round_trip"), before + 42);
  EXPECT_EQ(snap.ValueOf("test.never_registered"), 0u);
}

TEST(MetricsTest, DeltaDropsZeroEntriesAndCountsNewWork) {
  Counter& c = Counter::Get("test.delta");
  Counter::Get("test.delta_untouched");
  const MetricsSnapshot base = SnapshotMetrics();
  c.Add(7);
  const MetricsSnapshot delta = MetricsDelta(base);
  EXPECT_EQ(delta.ValueOf("test.delta"), 7u);
  for (const auto& [name, value] : delta.entries) {
    EXPECT_NE(value, 0u) << name << " should have been dropped";
    EXPECT_NE(name, "test.delta_untouched");
  }
}

TEST(MetricsTest, SnapshotIsSortedAndTextRendersEveryEntry) {
  Counter::Get("test.text_a").Increment();
  Counter::Get("test.text_b").Increment();
  const MetricsSnapshot snap = SnapshotMetrics();
  for (size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LT(snap.entries[i - 1].first, snap.entries[i].first);
  }
  const std::string text = MetricsToText(snap);
  EXPECT_NE(text.find("test.text_a "), std::string::npos);
  EXPECT_NE(text.find("test.text_b "), std::string::npos);
}

TEST(MetricsTest, ConcurrentAddsAreLossless) {
  Counter& c = Counter::Get("test.concurrent");
  const uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), before + kThreads * kAdds);
}

TEST(JsonWriterTest, CompactObjectWithEscapes) {
  JsonWriter w;
  w.BeginObject()
      .KV("name", "a\"b\\c\n\t")
      .KV("n", 42)
      .KV("neg", int64_t{-7})
      .KV("flag", true)
      .KV("ratio", 0.25)
      .Key("nothing")
      .Null()
      .EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a\\\"b\\\\c\\n\\t\",\"n\":42,\"neg\":-7,"
            "\"flag\":true,\"ratio\":0.25,\"nothing\":null}");
}

TEST(JsonWriterTest, NestedArraysAndIndentation) {
  JsonWriter w(2);
  w.BeginObject().Key("xs").BeginArray().Value(1).Value(2).EndArray()
      .EndObject();
  EXPECT_EQ(w.str(), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonWriterTest, ControlCharactersAreUnicodeEscaped) {
  EXPECT_EQ(JsonEscaped(std::string("\x01", 1)), "\\u0001");
  EXPECT_EQ(JsonEscaped("plain"), "plain");
}

TEST(TraceTest, RecordCollectRoundTrip) {
  StartTracing();
  RecordTraceSpan("span_a", "test", 100, 200);
  RecordTraceSpan("span_b", "test", 150, 300, "segment", 7);
  StopTracing();
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start cycle.
  EXPECT_STREQ(events[0].name, "span_a");
  EXPECT_STREQ(events[1].name, "span_b");
  EXPECT_EQ(events[1].arg_value, 7u);
  EXPECT_EQ(TraceDroppedEvents(), 0u);
}

TEST(TraceTest, InactiveTracingRecordsNothing) {
  StartTracing();
  StopTracing();
  RecordTraceSpan("ignored", "test", 1, 2);
  EXPECT_TRUE(CollectTraceEvents().empty());
}

TEST(TraceTest, StartResetsPreviousEvents) {
  StartTracing();
  RecordTraceSpan("old", "test", 1, 2);
  StopTracing();
  StartTracing();
  RecordTraceSpan("new", "test", 3, 4);
  StopTracing();
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "new");
}

TEST(TraceTest, TraceSpanRaiiRecordsOnDestruction) {
  StartTracing();
  { TraceSpan span("raii", "test"); }
  StopTracing();
  const std::vector<TraceEvent> events = CollectTraceEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "raii");
  EXPECT_GE(events[0].end_cycles, events[0].start_cycles);
}

TEST(TraceTest, MultiThreadedRecordingKeepsEveryEvent) {
  StartTracing();
  constexpr int kThreads = 4;
  constexpr int kSpans = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpans; ++i) {
        const auto base = static_cast<uint64_t>(t * kSpans + i);
        RecordTraceSpan("mt", "test", base, base + 1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  StopTracing();
  EXPECT_EQ(CollectTraceEvents().size() + TraceDroppedEvents(),
            static_cast<size_t>(kThreads) * kSpans);
}

TEST(TraceTest, BufferOverflowDropsInsteadOfOverwriting) {
  StartTracing();
  // One past the per-thread capacity (1 << 16).
  constexpr size_t kOverfill = (size_t{1} << 16) + 10;
  for (size_t i = 0; i < kOverfill; ++i) {
    RecordTraceSpan("fill", "test", i, i + 1);
  }
  StopTracing();
  const std::vector<TraceEvent> events = CollectTraceEvents();
  EXPECT_EQ(events.size(), size_t{1} << 16);
  EXPECT_EQ(TraceDroppedEvents(), kOverfill - (size_t{1} << 16));
  // The *first* events survive — drop-newest, never overwrite.
  EXPECT_EQ(events.front().start_cycles, 0u);
}

TEST(TraceTest, ChromeJsonExportShape) {
  StartTracing();
  RecordTraceSpan("alpha", "scan", 1000, 4000, "segment", 3);
  StopTracing();
  // tsc_hz = 1e6 makes ts/dur equal raw cycles (in microseconds).
  const std::string json = TraceToChromeJson(CollectTraceEvents(), 1e6);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"scan\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":3000.000"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"segment\":3}"), std::string::npos);
}

TEST(TraceTest, EmptyExportIsValidDocument) {
  StartTracing();
  StopTracing();
  const std::string json = TraceToChromeJson(CollectTraceEvents(), 1e6);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

}  // namespace
}  // namespace bipie::obs
