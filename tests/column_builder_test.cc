#include "storage/column_builder.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace bipie {
namespace {

std::vector<int64_t> DecodeAll(const EncodedColumn& col) {
  std::vector<int64_t> out(col.num_rows());
  col.DecodeInt64(0, col.num_rows(), out.data());
  return out;
}

TEST(ColumnBuilderTest, BitPackedRoundTrip) {
  ColumnBuilder b({"c", ColumnType::kInt64, EncodingChoice::kBitPacked});
  std::vector<int64_t> v;
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) v.push_back(rng.NextInRange(-100, 1000));
  for (int64_t x : v) b.AppendInt64(x);
  EncodedColumn col = b.Finish();
  EXPECT_EQ(col.encoding(), Encoding::kBitPacked);
  EXPECT_EQ(col.base(), -100);
  EXPECT_EQ(col.meta().min, -100);
  EXPECT_EQ(col.meta().max, 1000);
  EXPECT_EQ(DecodeAll(col), v);
}

TEST(ColumnBuilderTest, DictionaryRoundTrip) {
  ColumnBuilder b({"c", ColumnType::kInt64, EncodingChoice::kDictionary});
  std::vector<int64_t> v;
  Rng rng(2);
  const int64_t domain[4] = {1000000, -7, 42, 0};
  for (int i = 0; i < 3000; ++i) v.push_back(domain[rng.NextBounded(4)]);
  for (int64_t x : v) b.AppendInt64(x);
  EncodedColumn col = b.Finish();
  EXPECT_EQ(col.encoding(), Encoding::kDictionary);
  ASSERT_NE(col.int_dictionary(), nullptr);
  EXPECT_EQ(col.int_dictionary()->size(), 4u);
  EXPECT_EQ(col.id_bound(), 4u);
  EXPECT_EQ(col.bit_width(), 2);
  EXPECT_EQ(DecodeAll(col), v);
}

TEST(ColumnBuilderTest, RleRoundTrip) {
  ColumnBuilder b({"c", ColumnType::kInt64, EncodingChoice::kRle});
  std::vector<int64_t> v;
  for (int run = 0; run < 10; ++run) v.insert(v.end(), 100, run);
  for (int64_t x : v) b.AppendInt64(x);
  EncodedColumn col = b.Finish();
  EXPECT_EQ(col.encoding(), Encoding::kRle);
  EXPECT_EQ(col.runs().size(), 10u);
  EXPECT_EQ(DecodeAll(col), v);
}

TEST(ColumnBuilderTest, DeltaRoundTrip) {
  ColumnBuilder b({"c", ColumnType::kInt64, EncodingChoice::kDelta});
  std::vector<int64_t> v;
  Rng rng(41);
  int64_t x = -1000000;
  for (int i = 0; i < 20000; ++i) {
    v.push_back(x);
    x += rng.NextInRange(-3, 12);
  }
  for (int64_t value : v) b.AppendInt64(value);
  EncodedColumn col = b.Finish();
  EXPECT_EQ(col.encoding(), Encoding::kDelta);
  EXPECT_LE(col.bit_width(), 5);  // delta spread 15 -> 4 bits
  // Checkpoints every 4096 rows.
  EXPECT_EQ(col.delta_checkpoints().size(), (v.size() + 4095) / 4096);
  EXPECT_EQ(DecodeAll(col), v);
  // Windowed decode from a mid-stream checkpoint and off-checkpoint start.
  for (size_t start : {size_t{0}, size_t{4096}, size_t{5000}, size_t{8191},
                       v.size() - 7}) {
    std::vector<int64_t> out(7);
    col.DecodeInt64(start, 7, out.data());
    for (size_t i = 0; i < 7; ++i) {
      ASSERT_EQ(out[i], v[start + i]) << "start=" << start;
    }
  }
}

TEST(ColumnBuilderTest, DeltaSingleValueAndConstant) {
  ColumnBuilder b({"c", ColumnType::kInt64, EncodingChoice::kDelta});
  b.AppendInt64(42);
  EncodedColumn one = b.Finish();
  EXPECT_EQ(DecodeAll(one), std::vector<int64_t>{42});

  for (int i = 0; i < 100; ++i) b.AppendInt64(-7);
  EncodedColumn constant = b.Finish();
  EXPECT_EQ(DecodeAll(constant), std::vector<int64_t>(100, -7));
}

TEST(ColumnBuilderTest, AutoPicksDeltaForMonotonicSequences) {
  // Strictly increasing timestamps with small steps: FOR needs wide
  // offsets, runs are all length 1, dictionary is infeasible — delta wins.
  ColumnBuilder b({"ts", ColumnType::kInt64, EncodingChoice::kAuto});
  Rng rng(43);
  int64_t ts = 1600000000000;
  for (int i = 0; i < 100000; ++i) {
    b.AppendInt64(ts);
    ts += rng.NextInRange(1, 40);
  }
  EncodedColumn col = b.Finish();
  EXPECT_EQ(col.encoding(), Encoding::kDelta);
}

TEST(ColumnBuilderTest, AutoPicksRleForLongRuns) {
  ColumnBuilder b({"c", ColumnType::kInt64, EncodingChoice::kAuto});
  for (int run = 0; run < 3; ++run) {
    for (int i = 0; i < 10000; ++i) b.AppendInt64(run);
  }
  EncodedColumn col = b.Finish();
  EXPECT_EQ(col.encoding(), Encoding::kRle);
}

TEST(ColumnBuilderTest, AutoPicksDictionaryForSparseDomain) {
  // Few distinct, widely spread values: dictionary ids (2 bits) beat
  // frame-of-reference offsets (~40 bits), and runs are short.
  ColumnBuilder b({"c", ColumnType::kInt64, EncodingChoice::kAuto});
  Rng rng(3);
  const int64_t domain[3] = {0, 1'000'000'000'000LL, -55};
  for (int i = 0; i < 20000; ++i) b.AppendInt64(domain[rng.NextBounded(3)]);
  EncodedColumn col = b.Finish();
  EXPECT_EQ(col.encoding(), Encoding::kDictionary);
}

TEST(ColumnBuilderTest, AutoPicksBitPackedForDenseDomain) {
  // Dense small-range values: offsets are as narrow as dictionary ids would
  // be, without the dictionary overhead.
  ColumnBuilder b({"c", ColumnType::kInt64, EncodingChoice::kAuto});
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) b.AppendInt64(rng.NextInRange(0, 127));
  EncodedColumn col = b.Finish();
  EXPECT_EQ(col.encoding(), Encoding::kBitPacked);
  EXPECT_EQ(col.bit_width(), 7);
}

TEST(ColumnBuilderTest, StringColumnsAlwaysDictionary) {
  ColumnBuilder b({"flag", ColumnType::kString});
  const char* flags[3] = {"A", "N", "R"};
  Rng rng(5);
  std::vector<uint32_t> expected_ids;
  StringDictionary reference;
  for (int i = 0; i < 1000; ++i) {
    const std::string s = flags[rng.NextBounded(3)];
    expected_ids.push_back(reference.GetOrInsert(s));
    b.AppendString(s);
  }
  EncodedColumn col = b.Finish();
  EXPECT_EQ(col.encoding(), Encoding::kDictionary);
  ASSERT_NE(col.string_dictionary(), nullptr);
  EXPECT_EQ(col.string_dictionary()->size(), 3u);
  auto ids = DecodeAll(col);
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(ids[i], expected_ids[i]);
  }
}

TEST(ColumnBuilderTest, UnpackIdsMatchesBitWidth) {
  ColumnBuilder b({"c", ColumnType::kInt64, EncodingChoice::kBitPacked});
  for (int i = 0; i < 100; ++i) b.AppendInt64(50 + i % 10);
  EncodedColumn col = b.Finish();
  std::vector<uint8_t> ids(100);
  col.UnpackIds(0, 100, ids.data(), 1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ids[i], i % 10);  // offsets from base 50
  }
}

TEST(ColumnBuilderTest, EmptyColumn) {
  ColumnBuilder b({"c", ColumnType::kInt64});
  EncodedColumn col = b.Finish();
  EXPECT_EQ(col.num_rows(), 0u);
}

TEST(ColumnBuilderTest, BuilderResetsBetweenSegments) {
  ColumnBuilder b({"c", ColumnType::kInt64, EncodingChoice::kBitPacked});
  b.AppendInt64(1);
  b.AppendInt64(2);
  EncodedColumn first = b.Finish();
  EXPECT_EQ(first.num_rows(), 2u);
  b.AppendInt64(9);
  EncodedColumn second = b.Finish();
  EXPECT_EQ(second.num_rows(), 1u);
  EXPECT_EQ(DecodeAll(second), std::vector<int64_t>{9});
}

TEST(ColumnBuilderTest, BulkAppendMatchesRowAppend) {
  std::vector<int64_t> v = {5, 6, 7, 8, 9};
  ColumnBuilder bulk({"c", ColumnType::kInt64});
  bulk.AppendInt64Bulk(v.data(), v.size());
  ColumnBuilder rows({"c", ColumnType::kInt64});
  for (int64_t x : v) rows.AppendInt64(x);
  EXPECT_EQ(DecodeAll(bulk.Finish()), DecodeAll(rows.Finish()));
}

}  // namespace
}  // namespace bipie
