#include "common/aligned_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace bipie {
namespace {

TEST(AlignedBufferTest, EmptyBuffer) {
  AlignedBuffer b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBufferTest, AllocationIsAligned) {
  AlignedBuffer b(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % AlignedBuffer::kAlignment,
            0u);
  EXPECT_EQ(b.size(), 100u);
}

TEST(AlignedBufferTest, PaddingIsReadableAndZero) {
  AlignedBuffer b(17);
  for (size_t i = 0; i < 17; ++i) b.data()[i] = 0xAB;
  // Kernels are allowed to read kPaddingBytes past size(); those bytes must
  // be deterministic (zero).
  for (size_t i = 17; i < 17 + AlignedBuffer::kPaddingBytes; ++i) {
    EXPECT_EQ(b.data()[i], 0u) << "padding byte " << i;
  }
}

TEST(AlignedBufferTest, ResizePreservesPrefix) {
  AlignedBuffer b(8);
  for (size_t i = 0; i < 8; ++i) b.data()[i] = static_cast<uint8_t>(i + 1);
  b.Resize(4096);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(b.data()[i], i + 1);
  // Newly exposed bytes are zero.
  for (size_t i = 8; i < 4096; ++i) ASSERT_EQ(b.data()[i], 0u);
}

TEST(AlignedBufferTest, ShrinkRezerosPadding) {
  AlignedBuffer b(64);
  for (size_t i = 0; i < 64; ++i) b.data()[i] = 0xFF;
  b.Resize(16);
  EXPECT_EQ(b.size(), 16u);
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(b.data()[i], 0xFF);
  for (size_t i = 16; i < 16 + AlignedBuffer::kPaddingBytes; ++i) {
    EXPECT_EQ(b.data()[i], 0u);
  }
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(32);
  a.data()[0] = 7;
  uint8_t* ptr = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b.data()[0], 7);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT: intentional use-after-move check
  EXPECT_EQ(a.size(), 0u);       // NOLINT
}

TEST(AlignedBufferTest, CloneCopiesContents) {
  AlignedBuffer a(16);
  for (size_t i = 0; i < 16; ++i) a.data()[i] = static_cast<uint8_t>(i);
  AlignedBuffer b = a.Clone();
  EXPECT_NE(a.data(), b.data());
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(b.data()[i], i);
}

TEST(AlignedBufferTest, TypedAccessors) {
  AlignedBuffer b(8 * sizeof(uint32_t));
  EXPECT_EQ(b.size_as<uint32_t>(), 8u);
  b.data_as<uint32_t>()[3] = 0xDEADBEEF;
  EXPECT_EQ(b.data_as<uint32_t>()[3], 0xDEADBEEFu);
}

TEST(AlignedBufferTest, ZeroFill) {
  AlignedBuffer b(32);
  for (size_t i = 0; i < 32; ++i) b.data()[i] = 0xCC;
  b.ZeroFill();
  for (size_t i = 0; i < 32; ++i) EXPECT_EQ(b.data()[i], 0u);
}

TEST(AlignedBufferTest, GrowthIsGeometricAcrossManyResizes) {
  AlignedBuffer b;
  for (size_t size = 1; size <= (1u << 16); size *= 3) {
    b.Resize(size);
    ASSERT_EQ(b.size(), size);
    b.data()[size - 1] = 1;
  }
}

TEST(AlignedBufferTest, ShrinkToFitReleasesRetainedCapacity) {
  AlignedBuffer b(1 << 20);
  for (size_t i = 0; i < 32; ++i) b.data()[i] = static_cast<uint8_t>(i);
  b.Resize(32);  // logical shrink keeps the big allocation
  const size_t before = b.charged_bytes();
  b.ShrinkToFit();
  EXPECT_LT(b.charged_bytes(), before);
  EXPECT_EQ(b.size(), 32u);
  for (size_t i = 0; i < 32; ++i) EXPECT_EQ(b.data()[i], i);
  // The padding contract survives the reallocation.
  for (size_t i = 32; i < 32 + AlignedBuffer::kPaddingBytes; ++i) {
    EXPECT_EQ(b.data()[i], 0u) << "padding byte " << i;
  }
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % AlignedBuffer::kAlignment,
            0u);
}

TEST(AlignedBufferTest, ShrinkToFitOnEmptyAndTightBuffers) {
  AlignedBuffer empty;
  empty.ShrinkToFit();  // no-op, no allocation to trim
  EXPECT_EQ(empty.data(), nullptr);

  AlignedBuffer zero(4096);
  zero.Resize(0);
  zero.ShrinkToFit();  // size 0: the allocation is freed outright
  EXPECT_EQ(zero.data(), nullptr);
  EXPECT_EQ(zero.charged_bytes(), 0u);

  AlignedBuffer tight(128);
  const size_t charged = tight.charged_bytes();
  tight.ShrinkToFit();  // already tight: nothing to release
  EXPECT_EQ(tight.charged_bytes(), charged);
  EXPECT_EQ(tight.size(), 128u);
}

TEST(AlignedBufferTest, ChargeMatchesAllocationLifecycle) {
  // Charge symmetry: charged_bytes() covers the live allocation exactly —
  // set on grow, constant across logical shrinks, zero after Free().
  AlignedBuffer b;
  EXPECT_EQ(b.charged_bytes(), 0u);
  b.Resize(1000);
  const size_t grown = b.charged_bytes();
  EXPECT_GE(grown, 1000u + AlignedBuffer::kPaddingBytes);
  b.Resize(10);
  EXPECT_EQ(b.charged_bytes(), grown);  // retained capacity stays charged
  b.Free();
  EXPECT_EQ(b.charged_bytes(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

}  // namespace
}  // namespace bipie
