#include "common/aligned_buffer.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace bipie {
namespace {

TEST(AlignedBufferTest, EmptyBuffer) {
  AlignedBuffer b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBufferTest, AllocationIsAligned) {
  AlignedBuffer b(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.data()) % AlignedBuffer::kAlignment,
            0u);
  EXPECT_EQ(b.size(), 100u);
}

TEST(AlignedBufferTest, PaddingIsReadableAndZero) {
  AlignedBuffer b(17);
  for (size_t i = 0; i < 17; ++i) b.data()[i] = 0xAB;
  // Kernels are allowed to read kPaddingBytes past size(); those bytes must
  // be deterministic (zero).
  for (size_t i = 17; i < 17 + AlignedBuffer::kPaddingBytes; ++i) {
    EXPECT_EQ(b.data()[i], 0u) << "padding byte " << i;
  }
}

TEST(AlignedBufferTest, ResizePreservesPrefix) {
  AlignedBuffer b(8);
  for (size_t i = 0; i < 8; ++i) b.data()[i] = static_cast<uint8_t>(i + 1);
  b.Resize(4096);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(b.data()[i], i + 1);
  // Newly exposed bytes are zero.
  for (size_t i = 8; i < 4096; ++i) ASSERT_EQ(b.data()[i], 0u);
}

TEST(AlignedBufferTest, ShrinkRezerosPadding) {
  AlignedBuffer b(64);
  for (size_t i = 0; i < 64; ++i) b.data()[i] = 0xFF;
  b.Resize(16);
  EXPECT_EQ(b.size(), 16u);
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(b.data()[i], 0xFF);
  for (size_t i = 16; i < 16 + AlignedBuffer::kPaddingBytes; ++i) {
    EXPECT_EQ(b.data()[i], 0u);
  }
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer a(32);
  a.data()[0] = 7;
  uint8_t* ptr = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b.data()[0], 7);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT: intentional use-after-move check
  EXPECT_EQ(a.size(), 0u);       // NOLINT
}

TEST(AlignedBufferTest, CloneCopiesContents) {
  AlignedBuffer a(16);
  for (size_t i = 0; i < 16; ++i) a.data()[i] = static_cast<uint8_t>(i);
  AlignedBuffer b = a.Clone();
  EXPECT_NE(a.data(), b.data());
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(b.data()[i], i);
}

TEST(AlignedBufferTest, TypedAccessors) {
  AlignedBuffer b(8 * sizeof(uint32_t));
  EXPECT_EQ(b.size_as<uint32_t>(), 8u);
  b.data_as<uint32_t>()[3] = 0xDEADBEEF;
  EXPECT_EQ(b.data_as<uint32_t>()[3], 0xDEADBEEFu);
}

TEST(AlignedBufferTest, ZeroFill) {
  AlignedBuffer b(32);
  for (size_t i = 0; i < 32; ++i) b.data()[i] = 0xCC;
  b.ZeroFill();
  for (size_t i = 0; i < 32; ++i) EXPECT_EQ(b.data()[i], 0u);
}

TEST(AlignedBufferTest, GrowthIsGeometricAcrossManyResizes) {
  AlignedBuffer b;
  for (size_t size = 1; size <= (1u << 16); size *= 3) {
    b.Resize(size);
    ASSERT_EQ(b.size(), size);
    b.data()[size - 1] = 1;
  }
}

}  // namespace
}  // namespace bipie
