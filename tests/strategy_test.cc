#include "core/strategy.h"

#include <gtest/gtest.h>

namespace bipie {
namespace {

TEST(SelectionStrategyTest, CrossoverGrowsWithBitWidth) {
  // Figure 7: gather's win region expands as packed values get wider.
  EXPECT_NEAR(GatherCrossoverSelectivity(4), 0.02, 1e-9);
  EXPECT_NEAR(GatherCrossoverSelectivity(21), 0.38, 1e-9);
  EXPECT_LT(GatherCrossoverSelectivity(7), GatherCrossoverSelectivity(14));
  EXPECT_LT(GatherCrossoverSelectivity(14), GatherCrossoverSelectivity(21));
  // Clamped at both ends.
  EXPECT_GE(GatherCrossoverSelectivity(1), 0.02);
  EXPECT_LE(GatherCrossoverSelectivity(64), 0.45);
}

TEST(SelectionStrategyTest, LowSelectivityPicksGather) {
  EXPECT_EQ(ChooseSelectionStrategy(0.01, 14, true),
            SelectionStrategy::kGather);
  EXPECT_EQ(ChooseSelectionStrategy(0.30, 21, true),
            SelectionStrategy::kGather);
}

TEST(SelectionStrategyTest, HighSelectivityPicksSpecialGroup) {
  EXPECT_EQ(ChooseSelectionStrategy(0.98, 14, true),
            SelectionStrategy::kSpecialGroup);
  EXPECT_EQ(ChooseSelectionStrategy(0.50, 4, true),
            SelectionStrategy::kSpecialGroup);
}

TEST(SelectionStrategyTest, CompactionIsTheFallback) {
  EXPECT_EQ(ChooseSelectionStrategy(0.98, 14, false),
            SelectionStrategy::kCompact);
}

TEST(AggregationStrategyTest, CountOnlyPrefersInRegister) {
  EXPECT_EQ(ChooseAggregationStrategy(6, 0, 8, 1.0, false),
            AggregationStrategy::kInRegister);
  EXPECT_EQ(ChooseAggregationStrategy(200, 0, 8, 1.0, false),
            AggregationStrategy::kScalar);
}

TEST(AggregationStrategyTest, SmallBitsSmallGroupsPicksInRegister) {
  // Figure 8's regime: 8 groups, 7-bit values.
  EXPECT_EQ(ChooseAggregationStrategy(8, 1, 7, 1.0, true),
            AggregationStrategy::kInRegister);
}

TEST(AggregationStrategyTest, LowSelectivityManySumsPicksSortBased) {
  // Figure 9/10 left region: sort + gather wins at 10-20% selectivity.
  EXPECT_EQ(ChooseAggregationStrategy(12, 3, 14, 0.1, true),
            AggregationStrategy::kSortBased);
}

TEST(AggregationStrategyTest, WideValuesManyGroupsPickMultiAggregate) {
  // Figure 10's regime: 32 groups, 28-bit values, several sums.
  EXPECT_EQ(ChooseAggregationStrategy(32, 4, 28, 0.8, true),
            AggregationStrategy::kMultiAggregate);
}

TEST(AggregationStrategyTest, ScalarIsTheLastResort) {
  // > 256-capable strategies unavailable: expression-wide values, no
  // register fit, many groups.
  EXPECT_EQ(ChooseAggregationStrategy(200, 6, 64, 0.9, false),
            AggregationStrategy::kScalar);
}

TEST(StrategyNamesTest, AllNamed) {
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kGather), "gather");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kCompact), "compact");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kSpecialGroup),
               "special-group");
  EXPECT_STREQ(AggregationStrategyName(AggregationStrategy::kInRegister),
               "in-register");
  EXPECT_STREQ(AggregationStrategyName(AggregationStrategy::kSortBased),
               "sort-based");
  EXPECT_STREQ(AggregationStrategyName(AggregationStrategy::kMultiAggregate),
               "multi-aggregate");
  EXPECT_STREQ(AggregationStrategyName(AggregationStrategy::kCheckedScalar),
               "checked-scalar");
}

}  // namespace
}  // namespace bipie
