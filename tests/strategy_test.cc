#include "core/strategy.h"

#include <gtest/gtest.h>

#include "core/scan.h"
#include "expr/predicate.h"
#include "storage/table.h"

namespace bipie {
namespace {

TEST(SelectionStrategyTest, CrossoverGrowsWithBitWidth) {
  // Figure 7: gather's win region expands as packed values get wider.
  EXPECT_NEAR(GatherCrossoverSelectivity(4), 0.02, 1e-9);
  EXPECT_NEAR(GatherCrossoverSelectivity(21), 0.38, 1e-9);
  EXPECT_LT(GatherCrossoverSelectivity(7), GatherCrossoverSelectivity(14));
  EXPECT_LT(GatherCrossoverSelectivity(14), GatherCrossoverSelectivity(21));
  // Clamped at both ends.
  EXPECT_GE(GatherCrossoverSelectivity(1), 0.02);
  EXPECT_LE(GatherCrossoverSelectivity(64), 0.45);
}

TEST(SelectionStrategyTest, LowSelectivityPicksGather) {
  EXPECT_EQ(ChooseSelectionStrategy(0.01, 14, true),
            SelectionStrategy::kGather);
  EXPECT_EQ(ChooseSelectionStrategy(0.30, 21, true),
            SelectionStrategy::kGather);
}

TEST(SelectionStrategyTest, HighSelectivityPicksSpecialGroup) {
  EXPECT_EQ(ChooseSelectionStrategy(0.98, 14, true),
            SelectionStrategy::kSpecialGroup);
  EXPECT_EQ(ChooseSelectionStrategy(0.50, 4, true),
            SelectionStrategy::kSpecialGroup);
}

TEST(SelectionStrategyTest, CompactionIsTheFallback) {
  EXPECT_EQ(ChooseSelectionStrategy(0.98, 14, false),
            SelectionStrategy::kCompact);
}

TEST(AggregationStrategyTest, CountOnlyPrefersInRegister) {
  EXPECT_EQ(ChooseAggregationStrategy(6, 0, 8, 1.0, false),
            AggregationStrategy::kInRegister);
  EXPECT_EQ(ChooseAggregationStrategy(200, 0, 8, 1.0, false),
            AggregationStrategy::kScalar);
}

TEST(AggregationStrategyTest, SmallBitsSmallGroupsPicksInRegister) {
  // Figure 8's regime: 8 groups, 7-bit values.
  EXPECT_EQ(ChooseAggregationStrategy(8, 1, 7, 1.0, true),
            AggregationStrategy::kInRegister);
}

TEST(AggregationStrategyTest, LowSelectivityManySumsPicksSortBased) {
  // Figure 9/10 left region: sort + gather wins at 10-20% selectivity.
  EXPECT_EQ(ChooseAggregationStrategy(12, 3, 14, 0.1, true),
            AggregationStrategy::kSortBased);
}

TEST(AggregationStrategyTest, WideValuesManyGroupsPickMultiAggregate) {
  // Figure 10's regime: 32 groups, 28-bit values, several sums.
  EXPECT_EQ(ChooseAggregationStrategy(32, 4, 28, 0.8, true),
            AggregationStrategy::kMultiAggregate);
}

TEST(AggregationStrategyTest, ScalarIsTheLastResort) {
  // > 256-capable strategies unavailable: expression-wide values, no
  // register fit, many groups.
  EXPECT_EQ(ChooseAggregationStrategy(200, 6, 64, 0.9, false),
            AggregationStrategy::kScalar);
}

TEST(ByteSliceAdmissionTest, CapableRequiresAByteSliceFilter) {
  ByteSliceAdmissionInputs in;
  EXPECT_FALSE(ByteSliceCapable(in));
  EXPECT_FALSE(ByteSliceAdmitted(in));
  in.any_byteslice_filter = true;
  in.max_planes = 3;
  in.estimated_selectivity = 0.1;
  EXPECT_TRUE(ByteSliceCapable(in));
  EXPECT_TRUE(ByteSliceAdmitted(in));
}

TEST(ByteSliceAdmissionTest, SelectivityCeilingGatesMultiPlane) {
  ByteSliceAdmissionInputs in;
  in.any_byteslice_filter = true;
  in.max_planes = 4;
  in.estimated_selectivity = kByteSliceSelectivityCeiling + 0.05;
  EXPECT_TRUE(ByteSliceCapable(in));
  EXPECT_FALSE(ByteSliceAdmitted(in));  // pruning cannot pay off
  in.estimated_selectivity = kByteSliceSelectivityCeiling - 0.05;
  EXPECT_TRUE(ByteSliceAdmitted(in));
  // Single-plane columns have nothing to prune and nothing to lose: always
  // admitted once capable, whatever the selectivity estimate.
  in.max_planes = 1;
  in.estimated_selectivity = 1.0;
  EXPECT_TRUE(ByteSliceAdmitted(in));
}

TEST(ByteSliceAdmissionTest, SelectivityEstimateQuantiles) {
  // Uniform [0, 99]: each point mass is 1/100.
  EXPECT_NEAR(EstimatePredicateSelectivity(CompareOp::kEq, 42, 0, 0, 99),
              0.01, 1e-9);
  EXPECT_NEAR(EstimatePredicateSelectivity(CompareOp::kNe, 42, 0, 0, 99),
              0.99, 1e-9);
  EXPECT_NEAR(EstimatePredicateSelectivity(CompareOp::kLt, 25, 0, 0, 99),
              0.25, 1e-9);
  EXPECT_NEAR(EstimatePredicateSelectivity(CompareOp::kLe, 24, 0, 0, 99),
              0.25, 1e-9);
  EXPECT_NEAR(EstimatePredicateSelectivity(CompareOp::kGt, 89, 0, 0, 99),
              0.10, 1e-9);
  EXPECT_NEAR(EstimatePredicateSelectivity(CompareOp::kGe, 90, 0, 0, 99),
              0.10, 1e-9);
  EXPECT_NEAR(
      EstimatePredicateSelectivity(CompareOp::kBetween, 10, 19, 0, 99), 0.10,
      1e-9);
  // Out-of-domain literals clamp to the certain outcomes.
  EXPECT_NEAR(EstimatePredicateSelectivity(CompareOp::kLt, -5, 0, 0, 99),
              0.0, 1e-9);
  EXPECT_NEAR(EstimatePredicateSelectivity(CompareOp::kGe, -5, 0, 0, 99),
              1.0, 1e-9);
  EXPECT_NEAR(
      EstimatePredicateSelectivity(CompareOp::kBetween, 50, 20, 0, 99), 0.0,
      1e-9);
}

TEST(ByteSliceAdmissionTest, ForcedOnIncapableColumnIsNotSupported) {
  // No byteslice column anywhere: forcing the plane kernels must reject
  // with kNotSupported instead of silently running the fallback.
  Table table({{"v", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 128);
  for (int i = 0; i < 300; ++i) app.AppendRow({i % 50}, {""});
  app.Flush();
  QuerySpec query;
  query.aggregates = {AggregateSpec::Count()};
  query.filters.emplace_back("v", CompareOp::kLt, int64_t{25});
  ScanOptions options;
  options.overrides.byteslice = true;
  auto result = ExecuteQuery(table, query, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotSupported);
  // Forced off is always satisfiable: the fallback path runs everywhere.
  options.overrides.byteslice = false;
  auto off = ExecuteQuery(table, query, options);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off.value().rows[0].count, 150u);
}

TEST(StrategyNamesTest, AllNamed) {
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kGather), "gather");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kCompact), "compact");
  EXPECT_STREQ(SelectionStrategyName(SelectionStrategy::kSpecialGroup),
               "special-group");
  EXPECT_STREQ(AggregationStrategyName(AggregationStrategy::kInRegister),
               "in-register");
  EXPECT_STREQ(AggregationStrategyName(AggregationStrategy::kSortBased),
               "sort-based");
  EXPECT_STREQ(AggregationStrategyName(AggregationStrategy::kMultiAggregate),
               "multi-aggregate");
  EXPECT_STREQ(AggregationStrategyName(AggregationStrategy::kCheckedScalar),
               "checked-scalar");
}

}  // namespace
}  // namespace bipie
