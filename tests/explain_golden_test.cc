// Golden-file tests for BIPieScan::Explain() (DESIGN.md §12).
//
// Each case builds a deterministic table + query, renders the plan as text
// and as JSON, and diffs both byte-for-byte against the files under
// tests/golden/. The grid covers every aggregation strategy outcome the
// planner can reach: the adaptive in-register pick, forced
// scalar/sort/multi/checked plans, run-based admission, segment
// elimination, the hash fallback and the overflow-risk rejection.
//
// To regenerate after an intentional planner or renderer change:
//
//   ./explain_golden_test --update-golden
//
// then review the diff — golden churn IS the review surface for planner
// changes. The output must be machine-independent: Explain() reads only
// metadata (no ISA dispatch, no thread counts, no pointers), tables are
// built from fixed-seed Rng streams, and the JSON writer formats numbers
// with fixed rules.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/random.h"
#include "core/scan.h"
#include "obs/plan_explain.h"
#include "storage/table.h"

#ifndef BIPIE_GOLDEN_DIR
#error "BIPIE_GOLDEN_DIR must be defined to the tests/golden directory"
#endif

namespace bipie {
namespace {

bool g_update_golden = false;

std::string GoldenPath(const std::string& name, const char* ext) {
  return std::string(BIPIE_GOLDEN_DIR) + "/" + name + "." + ext;
}

void CompareWithGolden(const std::string& name, const char* ext,
                       const std::string& actual) {
  const std::string path = GoldenPath(name, ext);
  if (g_update_golden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run explain_golden_test --update-golden";
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(actual, content.str())
      << "explain output diverged from " << path
      << " — if the planner change is intentional, regenerate with "
         "explain_golden_test --update-golden and review the diff";
}

void CheckCase(const std::string& name, const Table& table,
               const QuerySpec& query, const ScanOptions& options = {}) {
  BIPieScan scan(table, query, options);
  auto explain = scan.Explain();
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  CompareWithGolden(name, "txt", explain.value().ToText());
  CompareWithGolden(name, "json", explain.value().ToJson() + "\n");
}

// Dictionary string group + bit-packed value columns, three segments.
Table MakeMixedTable() {
  Table table({
      {"g", ColumnType::kString},
      {"narrow", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"wide", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"filter_col", ColumnType::kInt64, EncodingChoice::kBitPacked},
  });
  TableAppender app(&table, /*segment_rows=*/1024);
  Rng rng(4001);
  const char* groups[4] = {"east", "west", "north", "south"};
  for (size_t i = 0; i < 3000; ++i) {
    std::vector<int64_t> ints(4, 0);
    std::vector<std::string> strings(4);
    strings[0] = groups[rng.NextBounded(4)];
    ints[1] = rng.NextInRange(0, 127);
    ints[2] = rng.NextInRange(0, (1 << 20) - 1);
    ints[3] = rng.NextInRange(0, 999);
    app.AppendRow(ints, strings);
  }
  app.Flush();
  return table;
}

// RLE-clustered group/filter columns: the run pipeline's home turf.
Table MakeRunTable() {
  Table table({
      {"g", ColumnType::kInt64, EncodingChoice::kRle},
      {"f", ColumnType::kInt64, EncodingChoice::kRle},
      {"amount", ColumnType::kInt64, EncodingChoice::kRle},
  });
  TableAppender app(&table, /*segment_rows=*/size_t{1} << 16);
  for (size_t i = 0; i < 60000; ++i) {
    app.AppendRow({static_cast<int64_t>((i / 10000) % 3),
                   static_cast<int64_t>((i / 7000) % 4),
                   static_cast<int64_t>((i / 6000) % 50)});
  }
  app.Flush();
  return table;
}

QuerySpec MakeMixedQuery(bool with_filter) {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("narrow"),
                      AggregateSpec::Sum("wide")};
  if (with_filter) {
    query.filters.emplace_back("filter_col", CompareOp::kLt, int64_t{250});
  }
  return query;
}

TEST(ExplainGoldenTest, AdaptiveUnfiltered) {
  CheckCase("adaptive_unfiltered", MakeMixedTable(),
            MakeMixedQuery(/*with_filter=*/false));
}

TEST(ExplainGoldenTest, AdaptiveFiltered) {
  CheckCase("adaptive_filtered", MakeMixedTable(),
            MakeMixedQuery(/*with_filter=*/true));
}

TEST(ExplainGoldenTest, ForcedScalarCompact) {
  ScanOptions options;
  options.overrides.selection = SelectionStrategy::kCompact;
  options.overrides.aggregation = AggregationStrategy::kScalar;
  CheckCase("forced_scalar_compact", MakeMixedTable(),
            MakeMixedQuery(/*with_filter=*/true), options);
}

TEST(ExplainGoldenTest, ForcedSortBasedGather) {
  ScanOptions options;
  options.overrides.selection = SelectionStrategy::kGather;
  options.overrides.aggregation = AggregationStrategy::kSortBased;
  CheckCase("forced_sort_gather", MakeMixedTable(),
            MakeMixedQuery(/*with_filter=*/true), options);
}

TEST(ExplainGoldenTest, ForcedMultiAggregate) {
  ScanOptions options;
  options.overrides.aggregation = AggregationStrategy::kMultiAggregate;
  CheckCase("forced_multi_aggregate", MakeMixedTable(),
            MakeMixedQuery(/*with_filter=*/true), options);
}

TEST(ExplainGoldenTest, RunBasedAdmitted) {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount")};
  query.filters.emplace_back("f", CompareOp::kLt, int64_t{2});
  CheckCase("run_based", MakeRunTable(), query);
}

TEST(ExplainGoldenTest, SegmentElimination) {
  // filter_col spans [0, 999]; an impossible filter eliminates everything.
  QuerySpec query = MakeMixedQuery(/*with_filter=*/false);
  query.filters.emplace_back("filter_col", CompareOp::kLt, int64_t{-5});
  CheckCase("eliminated", MakeMixedTable(), query);
}

TEST(ExplainGoldenTest, HashFallbackOversizedGroups) {
  // 40 x 20 combined groups exceed the 255-group envelope.
  Table table({{"g1", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"g2", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  Rng rng(4002);
  for (int i = 0; i < 8000; ++i) {
    app.AppendRow({rng.NextInRange(0, 39), rng.NextInRange(0, 19),
                   rng.NextInRange(0, 99)});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g1", "g2"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("x")};
  CheckCase("hash_fallback", table, query);
}

TEST(ExplainGoldenTest, OverflowRiskRejection) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"huge", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  Rng rng(4003);
  const int64_t kHuge = int64_t{1} << 61;
  for (int i = 0; i < 4000; ++i) {
    app.AppendRow({static_cast<int64_t>(rng.NextBounded(3)),
                   kHuge + rng.NextInRange(0, 1000)});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Sum("huge")};
  CheckCase("overflow_risk", table, query);
}

// Byte-sliced filter column next to a bit-packed one: one case per
// admission outcome (selective filter -> admitted, near-full-range filter
// -> rejected with the ceiling reason, forced off).
Table MakeByteSliceTable() {
  Table table({
      {"g", ColumnType::kInt64, EncodingChoice::kDictionary},
      {"sliced", ColumnType::kInt64, EncodingChoice::kByteSliced},
      {"amount", ColumnType::kInt64, EncodingChoice::kBitPacked},
  });
  TableAppender app(&table, /*segment_rows=*/2048);
  Rng rng(4004);
  for (size_t i = 0; i < 5000; ++i) {
    app.AppendRow({rng.NextInRange(0, 5),
                   rng.NextInRange(0, (int64_t{1} << 22) - 1),
                   rng.NextInRange(0, 499)});
  }
  app.Flush();
  return table;
}

QuerySpec MakeByteSliceQuery(int64_t threshold) {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount")};
  query.filters.emplace_back("sliced", CompareOp::kLt, threshold);
  return query;
}

TEST(ExplainGoldenTest, ByteSliceAdmitted) {
  // ~6% selectivity on a 3-plane column: well under the ceiling.
  CheckCase("byteslice_admitted", MakeByteSliceTable(),
            MakeByteSliceQuery(int64_t{1} << 18));
}

TEST(ExplainGoldenTest, ByteSliceRejectedBySelectivity) {
  // ~97% selectivity: pruning cannot pay off, the decode fallback runs.
  CheckCase("byteslice_rejected", MakeByteSliceTable(),
            MakeByteSliceQuery((int64_t{1} << 22) - 100000));
}

TEST(ExplainGoldenTest, ByteSliceForcedOff) {
  ScanOptions options;
  options.overrides.byteslice = false;
  CheckCase("byteslice_forced_off", MakeByteSliceTable(),
            MakeByteSliceQuery(int64_t{1} << 18), options);
}

TEST(ExplainGoldenTest, JsonAndTextAgreeOnSegmentCount) {
  // Sanity beyond byte equality: both renderings describe the same plan.
  Table table = MakeMixedTable();
  QuerySpec query = MakeMixedQuery(/*with_filter=*/true);
  BIPieScan scan(table, query);
  auto explain = scan.Explain();
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain.value().segments.size(),
            explain.value().segments_scanned +
                explain.value().segments_eliminated);
}

}  // namespace
}  // namespace bipie

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      bipie::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
