// Bounded differential fuzzing plus distilled regression tests for the bugs
// the harness was built to catch: scheduling-dependent error selection,
// stale stats across the hash fallback, first-contribution detection in the
// merge loop, and non-canonical selection byte vectors.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/hash_agg.h"
#include "core/scan.h"
#include "fuzz_harness.h"
#include "storage/table.h"
#include "vector/selection_vector.h"

namespace bipie {
namespace {

// ---------------------------------------------------------------------------
// Bounded fuzz budget: a slice of the full differential matrix runs in every
// ctest invocation (CI runs a much larger slice through tools/bipie_fuzz).
// ---------------------------------------------------------------------------

TEST(FuzzDriver, BoundedSeedSweep) {
  const fuzz::FuzzResult result =
      fuzz::RunFuzz(/*seed=*/1, /*iters=*/60, /*budget_seconds=*/20.0,
                    /*verbose=*/false);
  EXPECT_GT(result.iterations, 0u);
  EXPECT_EQ(result.failures, 0u)
      << "replay: bipie_fuzz --replay '" << result.first_failing.ToString()
      << "'\n"
      << result.first_error;
}

TEST(FuzzDriver, ReplayLineRoundTrips) {
  const fuzz::CaseParams p = fuzz::MakeCaseParams(42);
  fuzz::CaseParams parsed;
  std::string error;
  ASSERT_TRUE(fuzz::ParseCaseParams(p.ToString(), &parsed, &error)) << error;
  EXPECT_EQ(parsed.ToString(), p.ToString());
}

TEST(FuzzDriver, ParseRejectsMalformedLines) {
  fuzz::CaseParams parsed;
  std::string error;
  EXPECT_FALSE(fuzz::ParseCaseParams("seed", &parsed, &error));
  EXPECT_FALSE(fuzz::ParseCaseParams("bogus_key=1", &parsed, &error));
  EXPECT_FALSE(fuzz::ParseCaseParams("rows=abc", &parsed, &error));
}

TEST(FuzzDriver, ExplicitParamsRunGreen) {
  // A directed case crossing the specialized-group envelope with threads,
  // deletions and a wide filter column all at once.
  fuzz::CaseParams p;
  p.seed = 3;
  p.rows = 4000;
  p.segment_rows = 700;
  p.group_columns = 2;
  p.group_card = 280;  // > 255: adaptive must hash-fall-back cleanly
  p.num_aggs = 3;
  p.num_filters = 2;
  p.delete_frac = 0.05;
  p.target_selectivity = 0.3;
  p.wide_bits = 51;
  p.num_threads = 3;
  std::string error;
  EXPECT_TRUE(fuzz::RunOneCase(p, &error)) << error;
}

TEST(FuzzDriver, RunClusteredCasesRunGreen) {
  // Directed run-level-execution cases: RLE-clustered groups and filters on
  // the pooled scan, so runs cross morsel boundaries and the forced
  // kRunBased plan in the matrix diffs the run pipeline against the oracle.
  fuzz::CaseParams p;
  p.seed = 11;
  p.rows = 9000;
  p.segment_rows = 4096;
  p.group_columns = 2;
  p.group_card = 6;
  p.num_aggs = 3;
  p.num_filters = 2;
  p.target_selectivity = 0.6;
  p.num_threads = 0;
  p.sorted_fraction = 0.7;
  std::string error;
  EXPECT_TRUE(fuzz::RunOneCase(p, &error)) << error;
  // Deleted rows inside runs: forced kRunBased must reject cleanly and the
  // adaptive plan must fall back per segment without losing exactness.
  p.seed = 12;
  p.delete_frac = 0.03;
  EXPECT_TRUE(fuzz::RunOneCase(p, &error)) << error;
}

// ---------------------------------------------------------------------------
// Regression: deterministic error selection in BIPieScan::Execute.
//
// Segment 0 rejects at bind time (301 distinct groups > 255); segment 1
// overflows int64 during the checked-scalar scan. The scan used to stop at
// the first error (and, multithreaded, report whichever segment's status was
// written last), so the kNotSupported rejection could mask the overflow and
// silently reroute the query into the hash fallback. The real error must win
// regardless of segment order or thread scheduling.
// ---------------------------------------------------------------------------

Table MakeOverflowAfterNotSupportedTable() {
  Schema schema;
  schema.push_back({"g", ColumnType::kInt64, EncodingChoice::kDictionary});
  schema.push_back({"v", ColumnType::kInt64, EncodingChoice::kBitPacked});
  Table table(schema);
  TableAppender app(&table, /*segment_rows=*/301);
  // Segment 0: 301 distinct groups -> GroupMapper::Bind kNotSupported.
  for (int64_t i = 0; i < 301; ++i) app.AppendRow({i, 1});
  // Segment 1: one group, two values of 2^62 -> sum is 2^63, which the
  // checked-scalar path must abort with kOverflowRisk.
  app.AppendRow({0, int64_t{1} << 62});
  app.AppendRow({0, int64_t{1} << 62});
  app.Flush();
  return table;
}

QuerySpec SumByGroupQuery() {
  QuerySpec query;
  query.group_by.push_back("g");
  query.aggregates.push_back(AggregateSpec::Count());
  query.aggregates.push_back(AggregateSpec::Sum("v"));
  return query;
}

TEST(ScanErrorPriority, OverflowBeatsNotSupportedSingleThread) {
  const Table table = MakeOverflowAfterNotSupportedTable();
  BIPieScan scan(table, SumByGroupQuery(), ScanOptions{});
  auto result = scan.Execute();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOverflowRisk)
      << result.status().ToString();
  EXPECT_FALSE(scan.stats().used_hash_fallback);
}

TEST(ScanErrorPriority, OverflowBeatsNotSupportedMultiThread) {
  const Table table = MakeOverflowAfterNotSupportedTable();
  for (int trial = 0; trial < 20; ++trial) {
    ScanOptions options;
    options.num_threads = 4;
    BIPieScan scan(table, SumByGroupQuery(), options);
    auto result = scan.Execute();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kOverflowRisk)
        << "trial " << trial << ": " << result.status().ToString();
    EXPECT_FALSE(scan.stats().used_hash_fallback);
  }
}

// ---------------------------------------------------------------------------
// Regression: the hash fallback used to leave the aborted specialized scan's
// progress counters (batches, rows_scanned, per-strategy tallies) in stats_,
// describing a scan whose results were discarded.
// ---------------------------------------------------------------------------

TEST(ScanFallbackStats, FallbackResetsSpecializedProgress) {
  Schema schema;
  schema.push_back({"g", ColumnType::kInt64, EncodingChoice::kDictionary});
  schema.push_back({"v", ColumnType::kInt64, EncodingChoice::kBitPacked});
  Table table(schema);
  TableAppender app(&table, /*segment_rows=*/400);
  // Segment 0 scans fine (2 groups); segment 1 rejects (301 groups).
  for (int64_t i = 0; i < 400; ++i) app.AppendRow({i % 2, i});
  for (int64_t i = 0; i < 301; ++i) app.AppendRow({i, 1});
  app.Flush();

  BIPieScan scan(table, SumByGroupQuery(), ScanOptions{});
  auto result = scan.Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const ScanStats& stats = scan.stats();
  EXPECT_TRUE(stats.used_hash_fallback);
  // Progress counters must describe the query that produced the result (the
  // hash fallback), not the aborted specialized attempt over segment 0.
  EXPECT_EQ(stats.batches, 0u);
  EXPECT_EQ(stats.rows_scanned, 0u);
  EXPECT_EQ(stats.rows_selected, 0u);
  for (int a = 0; a < 5; ++a) EXPECT_EQ(stats.aggregation_segments[a], 0u);

  // And the fallback answer itself matches the oracle.
  auto oracle = ExecuteQueryHashAgg(table, SumByGroupQuery());
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(result.value().rows.size(), oracle.value().rows.size());
  for (size_t r = 0; r < oracle.value().rows.size(); ++r) {
    EXPECT_EQ(result.value().rows[r].group, oracle.value().rows[r].group);
    EXPECT_EQ(result.value().rows[r].count, oracle.value().rows[r].count);
    EXPECT_EQ(result.value().rows[r].sums, oracle.value().rows[r].sums);
  }
}

// ---------------------------------------------------------------------------
// Regression: first-contribution detection in the merge loop. MIN/MAX
// seeding and group-key assignment must trigger exactly once per group, even
// when a group appears in many segments and for count-only queries.
// ---------------------------------------------------------------------------

TEST(ScanMerge, MinMaxSeedAcrossSegments) {
  Schema schema;
  schema.push_back({"g", ColumnType::kInt64, EncodingChoice::kDictionary});
  schema.push_back({"v", ColumnType::kInt64, EncodingChoice::kBitPacked});
  Table table(schema);
  TableAppender app(&table, /*segment_rows=*/4);
  // Group 0 spans three segments; its true min (-50) and max (90) each live
  // in a later segment than the first contribution. A merge that re-seeds on
  // every contribution, or that never seeds, gets one of them wrong (the
  // accumulator default of 0 would win over -50 for MIN).
  app.AppendRow({0, 10});
  app.AppendRow({0, 20});
  app.AppendRow({1, 7});
  app.AppendRow({1, 7});
  app.AppendRow({0, -50});
  app.AppendRow({0, 90});
  app.AppendRow({1, 7});
  app.AppendRow({1, 7});
  app.AppendRow({0, 15});
  app.Flush();
  ASSERT_EQ(table.num_segments(), 3u);

  QuerySpec query;
  query.group_by.push_back("g");
  query.aggregates.push_back(AggregateSpec::Min("v"));
  query.aggregates.push_back(AggregateSpec::Max("v"));
  auto result = ExecuteQuery(table, query, ScanOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 2u);
  EXPECT_EQ(result.value().rows[0].group[0].int_value, 0);
  EXPECT_EQ(result.value().rows[0].sums, (std::vector<int64_t>{-50, 90}));
  EXPECT_EQ(result.value().rows[1].group[0].int_value, 1);
  EXPECT_EQ(result.value().rows[1].sums, (std::vector<int64_t>{7, 7}));
}

TEST(ScanMerge, CountOnlyAcrossSegments) {
  Schema schema;
  schema.push_back({"g", ColumnType::kInt64, EncodingChoice::kDictionary});
  Table table(schema);
  TableAppender app(&table, /*segment_rows=*/8);
  for (int64_t i = 0; i < 30; ++i) app.AppendRow({i % 3});
  app.Flush();
  ASSERT_GT(table.num_segments(), 1u);

  QuerySpec query;
  query.group_by.push_back("g");
  query.aggregates.push_back(AggregateSpec::Count());
  auto result = ExecuteQuery(table, query, ScanOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 3u);
  for (const ResultRow& row : result.value().rows) {
    EXPECT_EQ(row.count, 10u);
    ASSERT_EQ(row.sums.size(), 1u);
    EXPECT_EQ(row.sums[0], 10);
  }
}

// ---------------------------------------------------------------------------
// Selection byte canonicality.
// ---------------------------------------------------------------------------

TEST(SelectionCanonical, Predicate) {
  EXPECT_TRUE(SelectionBytesAreCanonical(nullptr, 0));
  const uint8_t good[] = {0x00, 0xFF, 0xFF, 0x00};
  EXPECT_TRUE(SelectionBytesAreCanonical(good, sizeof(good)));
  const uint8_t low_bit[] = {0x00, 0x01};   // scalar-`&1` true, movemask false
  const uint8_t high_bit[] = {0x80, 0xFF};  // movemask true, testb != PEXT
  EXPECT_FALSE(SelectionBytesAreCanonical(low_bit, sizeof(low_bit)));
  EXPECT_FALSE(SelectionBytesAreCanonical(high_bit, sizeof(high_bit)));
}

TEST(SelectionCanonical, ByteIsSetUsesSignBit) {
  // Scalar tails must agree with the AVX2 movemask (sign bit) semantics on
  // any byte, canonical or not.
  EXPECT_EQ(SelectionByteIsSet(0x00), 0);
  EXPECT_EQ(SelectionByteIsSet(0x01), 0);
  EXPECT_EQ(SelectionByteIsSet(0x7F), 0);
  EXPECT_EQ(SelectionByteIsSet(0x80), 1);
  EXPECT_EQ(SelectionByteIsSet(0xFF), 1);
}

#if defined(BIPIE_VALIDATE_SELECTION) && !defined(__SANITIZE_THREAD__)
TEST(SelectionCanonicalDeathTest, NonCanonicalBytesAbortKernels) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const uint8_t bad[] = {0xFF, 0x01, 0x00, 0xFF, 0x00, 0x00, 0x00, 0x00};
  EXPECT_DEATH(CountSelected(bad, sizeof(bad)), "SelectionBytesAreCanonical");
}
#endif

}  // namespace
}  // namespace bipie
