#include "encoding/rle.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace bipie {
namespace {

TEST(RleTest, EncodeEmpty) {
  EXPECT_TRUE(RleEncode(nullptr, 0).empty());
}

TEST(RleTest, EncodeSingleRun) {
  std::vector<uint64_t> v(100, 42);
  auto runs = RleEncode(v.data(), v.size());
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (RleRun{42, 100}));
}

TEST(RleTest, EncodeAlternating) {
  std::vector<uint64_t> v = {1, 1, 2, 2, 2, 1, 3};
  auto runs = RleEncode(v.data(), v.size());
  ASSERT_EQ(runs.size(), 4u);
  EXPECT_EQ(runs[0], (RleRun{1, 2}));
  EXPECT_EQ(runs[1], (RleRun{2, 3}));
  EXPECT_EQ(runs[2], (RleRun{1, 1}));
  EXPECT_EQ(runs[3], (RleRun{3, 1}));
  EXPECT_EQ(RleRowCount(runs), v.size());
}

TEST(RleTest, RoundTrip) {
  Rng rng(77);
  std::vector<uint64_t> v;
  for (int run = 0; run < 50; ++run) {
    const uint64_t value = rng.NextBounded(5);
    const size_t len = 1 + rng.NextBounded(20);
    v.insert(v.end(), len, value);
  }
  auto runs = RleEncode(v.data(), v.size());
  std::vector<uint64_t> decoded(v.size());
  RleDecode(runs, decoded.data());
  EXPECT_EQ(decoded, v);
}

TEST(RleTest, DecodeRangeMatchesFullDecode) {
  Rng rng(78);
  std::vector<uint64_t> v;
  for (int run = 0; run < 40; ++run) {
    v.insert(v.end(), 1 + rng.NextBounded(9), rng.NextBounded(4));
  }
  auto runs = RleEncode(v.data(), v.size());
  for (size_t start : {size_t{0}, size_t{1}, size_t{7}, v.size() / 2,
                       v.size() - 1}) {
    for (size_t len : {size_t{0}, size_t{1}, size_t{5},
                       v.size() - start}) {
      if (start + len > v.size()) continue;
      std::vector<uint64_t> out(len, ~0ULL);
      RleDecodeRange(runs, start, len, out.data());
      for (size_t i = 0; i < len; ++i) {
        ASSERT_EQ(out[i], v[start + i]) << "start=" << start << " len=" << len;
      }
    }
  }
}

TEST(RleTest, DecodeRangeCrossingManyRuns) {
  std::vector<uint64_t> v;
  for (uint64_t i = 0; i < 100; ++i) v.push_back(i);  // all runs length 1
  auto runs = RleEncode(v.data(), v.size());
  ASSERT_EQ(runs.size(), 100u);
  std::vector<uint64_t> out(50);
  RleDecodeRange(runs, 25, 50, out.data());
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(out[i], 25 + i);
}

}  // namespace
}  // namespace bipie
