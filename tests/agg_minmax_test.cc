#include "vector/agg_minmax.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "baseline/scalar_engine.h"
#include "core/scan.h"
#include "test_util.h"

namespace bipie {
namespace {

class MinMaxKernelSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MinMaxKernelSweep, MatchesScalarReference) {
  const int word = std::get<0>(GetParam());
  const int num_groups = std::get<1>(GetParam());
  const size_t n = 4099;
  auto groups = test::RandomGroups(n, num_groups, word * 31 + num_groups);
  AlignedBuffer values(n * word);
  Rng rng(word * 77 + num_groups);
  for (size_t i = 0; i < values.size(); ++i) {
    values.data()[i] = static_cast<uint8_t>(rng.Next());
  }

  std::vector<uint64_t> expected_min(num_groups, ~uint64_t{0});
  std::vector<uint64_t> expected_max(num_groups, 0);
  internal::GroupedMinUScalar(groups.data(), values.data(), word, n,
                              expected_min.data());
  internal::GroupedMaxUScalar(groups.data(), values.data(), word, n,
                              expected_max.data());

  test::ForEachIsaTier([&](IsaTier tier) {
    std::vector<uint64_t> got_min(num_groups, ~uint64_t{0});
    std::vector<uint64_t> got_max(num_groups, 0);
    GroupedMinU(groups.data(), values.data(), word, n, num_groups,
                got_min.data());
    GroupedMaxU(groups.data(), values.data(), word, n, num_groups,
                got_max.data());
    ASSERT_EQ(got_min, expected_min)
        << "word=" << word << " tier=" << IsaTierName(tier);
    ASSERT_EQ(got_max, expected_max)
        << "word=" << word << " tier=" << IsaTierName(tier);
  });
}

INSTANTIATE_TEST_SUITE_P(
    WordsAndGroups, MinMaxKernelSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),
                       ::testing::Values(1, 3, 8, 32, 100, 256)));

TEST(MinMaxKernelTest, I64HandlesNegatives) {
  const size_t n = 2000;
  auto groups = test::RandomGroups(n, 5, 9);
  std::vector<int64_t> values(n);
  Rng rng(10);
  for (auto& v : values) v = rng.NextInRange(-1000000, 1000000);
  std::vector<int64_t> mins(5, std::numeric_limits<int64_t>::max());
  std::vector<int64_t> maxs(5, std::numeric_limits<int64_t>::min());
  GroupedMinI64(groups.data(), values.data(), n, 5, mins.data());
  GroupedMaxI64(groups.data(), values.data(), n, 5, maxs.data());
  std::vector<int64_t> emin(5, std::numeric_limits<int64_t>::max());
  std::vector<int64_t> emax(5, std::numeric_limits<int64_t>::min());
  for (size_t i = 0; i < n; ++i) {
    emin[groups.data()[i]] = std::min(emin[groups.data()[i]], values[i]);
    emax[groups.data()[i]] = std::max(emax[groups.data()[i]], values[i]);
  }
  EXPECT_EQ(mins, emin);
  EXPECT_EQ(maxs, emax);
}

TEST(MinMaxKernelTest, AccumulatesAcrossCalls) {
  std::vector<uint8_t> groups = {0, 1, 0, 1};
  std::vector<uint32_t> chunk1 = {10, 20, 30, 40};
  std::vector<uint32_t> chunk2 = {5, 50, 15, 25};
  std::vector<uint64_t> mins(2, ~uint64_t{0});
  GroupedMinU(groups.data(), chunk1.data(), 4, 4, 2, mins.data());
  GroupedMinU(groups.data(), chunk2.data(), 4, 4, 2, mins.data());
  EXPECT_EQ(mins[0], 5u);
  EXPECT_EQ(mins[1], 20u);
}

// --- end-to-end through the scan ---------------------------------------------

Table MakeTable(size_t rows, uint64_t seed) {
  Table table({{"g", ColumnType::kString},
               {"v", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"signed_v", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"f", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  Rng rng(seed);
  const char* gs[4] = {"a", "b", "c", "d"};
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({0, rng.NextInRange(0, 100000),
                   rng.NextInRange(-5000, 5000), rng.NextInRange(0, 99)},
                  {gs[rng.NextBounded(4)], "", "", ""});
  }
  app.Flush();
  return table;
}

TEST(MinMaxScanTest, EveryStrategyComboMatchesOracle) {
  Table table = MakeTable(12000, 71);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(),  AggregateSpec::Min("v"),
                      AggregateSpec::Max("v"), AggregateSpec::Min("signed_v"),
                      AggregateSpec::Max("signed_v"),
                      AggregateSpec::Sum("v")};
  query.filters.emplace_back("f", CompareOp::kLt, int64_t{70});
  auto expected = ExecuteQueryNaive(table, query);
  ASSERT_TRUE(expected.ok());

  for (auto sel : {SelectionStrategy::kGather, SelectionStrategy::kCompact,
                   SelectionStrategy::kSpecialGroup}) {
    for (auto agg :
         {AggregationStrategy::kScalar, AggregationStrategy::kInRegister,
          AggregationStrategy::kSortBased,
          AggregationStrategy::kMultiAggregate}) {
      ScanOptions options;
      options.overrides.selection = sel;
      options.overrides.aggregation = agg;
      auto got = ExecuteQuery(table, query, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got.value().rows.size(), expected.value().rows.size());
      for (size_t r = 0; r < got.value().rows.size(); ++r) {
        ASSERT_EQ(got.value().rows[r].sums, expected.value().rows[r].sums)
            << SelectionStrategyName(sel) << "+"
            << AggregationStrategyName(agg) << " row " << r;
      }
    }
  }
}

TEST(MinMaxScanTest, MinMaxOnlyQueryAdaptive) {
  Table table = MakeTable(6000, 73);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Min("signed_v"),
                      AggregateSpec::Max("signed_v")};
  auto expected = ExecuteQueryNaive(table, query);
  auto got = ExecuteQuery(table, query);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got.value().rows.size(), expected.value().rows.size());
  for (size_t r = 0; r < got.value().rows.size(); ++r) {
    EXPECT_EQ(got.value().rows[r].sums, expected.value().rows[r].sums);
    // Min <= max always.
    EXPECT_LE(got.value().rows[r].sums[0], got.value().rows[r].sums[1]);
  }
}

TEST(MinMaxScanTest, MultiSegmentMergeTakesExtremes) {
  Table table = MakeTable(9000, 79);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Min("v"), AggregateSpec::Max("v"),
                      AggregateSpec::Count()};
  EXPECT_GT(table.num_segments(), 1u);
  auto expected = ExecuteQueryNaive(table, query);
  auto got = ExecuteQuery(table, query);
  ASSERT_TRUE(got.ok());
  for (size_t r = 0; r < got.value().rows.size(); ++r) {
    EXPECT_EQ(got.value().rows[r].sums, expected.value().rows[r].sums);
  }
}

TEST(MinMaxScanTest, WideColumnFallsBackToLogicalPath) {
  // > 32-bit offsets route min/max through the expression (int64) path.
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"wide", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  Rng rng(83);
  for (int i = 0; i < 5000; ++i) {
    app.AppendRow({static_cast<int64_t>(rng.NextBounded(3)),
                   rng.NextInRange(0, int64_t{1} << 40)});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Min("wide"), AggregateSpec::Max("wide")};
  auto expected = ExecuteQueryNaive(table, query);
  auto got = ExecuteQuery(table, query);
  ASSERT_TRUE(got.ok());
  for (size_t r = 0; r < got.value().rows.size(); ++r) {
    EXPECT_EQ(got.value().rows[r].sums, expected.value().rows[r].sums);
  }
}

}  // namespace
}  // namespace bipie
