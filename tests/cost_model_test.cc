// Calibration profile persistence + cost-model law tests (DESIGN.md §17).
//
// The profile file is untrusted input: the corruption sweep flips every
// byte and tries every truncation length, and all of them must reject with
// a structured Status — never a crash, never a silently-wrong profile. The
// model-law tests pin the monotonicity properties the admission logic
// relies on, and the regression tests cover the decisions the model makes
// differently from (or identically to) the legacy heuristics on real
// tables, including the latent run-admission inconsistency: the heuristic
// span floor never consulted filter selectivity, the model does.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baseline/scalar_engine.h"
#include "common/crc32c.h"
#include "common/random.h"
#include "core/scan.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"
#include "obs/plan_explain.h"
#include "storage/table.h"

namespace bipie {
namespace cost {
namespace {

// --- profile persistence ----------------------------------------------------

TEST(CalibrationProfileTest, BuiltinIsDeterministic) {
  const CalibrationProfile a = BuiltinProfile();
  const CalibrationProfile b = BuiltinProfile();
  EXPECT_EQ(SerializeProfile(a), SerializeProfile(b));
  EXPECT_EQ(a.calibrated, 0u);
  EXPECT_EQ(a.isa_tier, 0u);
}

TEST(CalibrationProfileTest, SerializeParseRoundTrip) {
  CalibrationProfile profile = BuiltinProfile();
  // Perturb every field so the round-trip can't pass by accident.
  for (int b = 0; b < kNumWidthBuckets; ++b) {
    profile.unpack_cycles[b] += 0.01 * (b + 1);
    profile.compare_cycles[b] += 0.001 * (b + 1);
  }
  profile.byteslice_plane_cycles += 0.03;
  profile.rle_run_cycles += 0.5;
  profile.mem_bytes_per_cycle += 1.25;
  profile.isa_tier = 2;
  profile.calibrated = 1;

  const std::vector<uint8_t> image = SerializeProfile(profile);
  auto parsed = ParseProfile(image.data(), image.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Exact field equality: serialization is bit-preserving for doubles.
  EXPECT_EQ(SerializeProfile(parsed.value()), image);
  EXPECT_EQ(parsed.value().isa_tier, 2u);
  EXPECT_EQ(parsed.value().calibrated, 1u);
  for (int b = 0; b < kNumWidthBuckets; ++b) {
    EXPECT_EQ(parsed.value().unpack_cycles[b], profile.unpack_cycles[b]);
    EXPECT_EQ(parsed.value().compare_cycles[b], profile.compare_cycles[b]);
  }
  EXPECT_EQ(parsed.value().mem_bytes_per_cycle, profile.mem_bytes_per_cycle);
}

TEST(CalibrationProfileTest, EveryByteFlipRejectsCleanly) {
  const std::vector<uint8_t> image = SerializeProfile(BuiltinProfile());
  for (size_t i = 0; i < image.size(); ++i) {
    std::vector<uint8_t> mutant = image;
    mutant[i] ^= 0xFF;
    auto parsed = ParseProfile(mutant.data(), mutant.size());
    ASSERT_FALSE(parsed.ok()) << "byte flip at offset " << i << " accepted";
    // Any flip breaks the CRC (or the magic/version it guards); the status
    // must be one of the structured rejection classes.
    const StatusCode code = parsed.status().code();
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kNotSupported ||
                code == StatusCode::kInvalidArgument)
        << "offset " << i << ": " << parsed.status().ToString();
    EXPECT_FALSE(parsed.status().message().empty());
  }
}

TEST(CalibrationProfileTest, EveryTruncationRejectsCleanly) {
  const std::vector<uint8_t> image = SerializeProfile(BuiltinProfile());
  for (size_t n = 0; n < image.size(); ++n) {
    auto parsed = ParseProfile(image.data(), n);
    ASSERT_FALSE(parsed.ok()) << "truncation to " << n << " bytes accepted";
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss)
        << "length " << n;
  }
  // One byte extra is a size mismatch too.
  std::vector<uint8_t> extended = image;
  extended.push_back(0);
  EXPECT_FALSE(ParseProfile(extended.data(), extended.size()).ok());
}

TEST(CalibrationProfileTest, NonFiniteEntryRejects) {
  CalibrationProfile profile = BuiltinProfile();
  profile.gather_row_cycles = -1.0;
  const std::vector<uint8_t> image = SerializeProfile(profile);
  auto parsed = ParseProfile(image.data(), image.size());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(CalibrationProfileTest, VersionMismatchIsNotSupported) {
  std::vector<uint8_t> image = SerializeProfile(BuiltinProfile());
  // Patch the version word (bytes 4..8, LE) and re-seal the CRC so the
  // version check — not the checksum — is what fires.
  const uint32_t bumped = kProfileVersion + 1;
  std::memcpy(image.data() + 4, &bumped, sizeof(bumped));
  const uint32_t crc = Crc32c(image.data(), image.size() - 4);
  std::memcpy(image.data() + image.size() - 4, &crc, sizeof(crc));
  auto parsed = ParseProfile(image.data(), image.size());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kNotSupported);
}

TEST(CalibrationProfileTest, SaveLoadRoundTripsThroughDisk) {
  const std::string path =
      ::testing::TempDir() + "/bipie_cost_profile_roundtrip.bin";
  const CalibrationProfile profile = BuiltinProfile();
  ASSERT_TRUE(SaveProfile(profile, path).ok());
  auto loaded = LoadProfile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(SerializeProfile(loaded.value()), SerializeProfile(profile));
  std::remove(path.c_str());
}

TEST(CalibrationProfileTest, LoadOrCalibrateRecoversFromBadFile) {
  const std::string path =
      ::testing::TempDir() + "/bipie_cost_profile_corrupt.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "not a calibration profile at all";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  ASSERT_FALSE(LoadProfile(path).ok());
  const CalibrationProfile fresh = LoadOrCalibrate(path);
  EXPECT_EQ(fresh.calibrated, 1u);
  // The bad file was rewritten with the fresh profile.
  auto reloaded = LoadProfile(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(SerializeProfile(reloaded.value()), SerializeProfile(fresh));
  std::remove(path.c_str());
}

TEST(CalibrationProfileTest, CalibrateProducesValidProfile) {
  CalibrateOptions options;
  options.rows = size_t{1} << 12;  // keep the test fast
  options.repeats = 1;
  const CalibrationProfile measured = Calibrate(options);
  EXPECT_EQ(measured.calibrated, 1u);
  // A measured profile must itself serialize and parse (all entries within
  // the accepted range — Calibrate clamps absurd measurements).
  const std::vector<uint8_t> image = SerializeProfile(measured);
  auto parsed = ParseProfile(image.data(), image.size());
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
}

// --- model laws -------------------------------------------------------------

TEST(CostModelLawTest, UnpackCostNondecreasingInWidth) {
  const CalibrationProfile profile = BuiltinProfile();
  const CostModel model(profile);
  double prev = 0.0;
  for (int w = 1; w <= 64; ++w) {
    const double c = model.UnpackCyclesPerRow(w);
    EXPECT_GE(c, prev) << "width " << w;
    prev = c;
  }
}

TEST(CostModelLawTest, ByteSliceCostIncreasesWithSelectivityAndPlanes) {
  const CalibrationProfile profile = BuiltinProfile();
  const CostModel model(profile);
  for (int planes = 1; planes <= 8; ++planes) {
    double prev = -1.0;
    for (double s = 0.0; s <= 1.0; s += 0.125) {
      const double c = model.ByteSliceFilterCyclesPerRow(planes, s);
      EXPECT_GE(c, prev) << "planes=" << planes << " s=" << s;
      prev = c;
    }
  }
  // More planes cost more at any fixed nonzero selectivity.
  for (int planes = 2; planes <= 8; ++planes) {
    EXPECT_GT(model.ByteSliceFilterCyclesPerRow(planes, 0.5),
              model.ByteSliceFilterCyclesPerRow(planes - 1, 0.5));
  }
}

TEST(CostModelLawTest, ThreePlaneCrossoverMatchesLegacyCeiling) {
  // The builtin profile is tuned so the 3-plane byteslice-vs-decode
  // crossover lands at the legacy selectivity ceiling of 0.8: below it the
  // plane kernels win, above it assemble-and-compare wins.
  const CalibrationProfile profile = BuiltinProfile();
  const CostModel model(profile);
  const int bits = 22;  // 3 planes
  const double decode = model.UnpackCyclesPerRow(bits) +
                        model.CompareCyclesPerRow(bits);
  EXPECT_LT(model.ByteSliceFilterCyclesPerRow(3, 0.7), decode);
  EXPECT_GT(model.ByteSliceFilterCyclesPerRow(3, 0.9), decode);
}

TEST(CostModelLawTest, ScoreSegmentPrefersLowerCostAndBreaksTiesByEnum) {
  const CalibrationProfile profile = BuiltinProfile();
  const CostModel model(profile);
  SegmentCostInputs in;
  in.rows = 4096;
  in.num_sums = 2;
  in.agg_decode_cpr = 1.0;
  in.group_decode_cpr = 0.5;
  in.in_register_feasible = true;
  in.multi_fits = true;
  in.sort_feasible = true;
  const SegmentCosts costs = model.ScoreSegment(in);
  // The chosen entry is the strict argmin of the feasible totals.
  const double chosen_cpr =
      costs.total_cpr[static_cast<int>(costs.chosen)];
  ASSERT_GE(chosen_cpr, 0.0);
  for (int i = 0; i < kNumAggregationStrategies; ++i) {
    if (costs.total_cpr[i] < 0.0) continue;
    EXPECT_GE(costs.total_cpr[i], chosen_cpr);
    if (costs.total_cpr[i] == chosen_cpr) {
      EXPECT_GE(i, static_cast<int>(costs.chosen));  // tie -> lower enum
    }
  }
}

TEST(CostModelLawTest, InfeasibleStrategiesScoreNegative) {
  const CalibrationProfile profile = BuiltinProfile();
  const CostModel model(profile);
  SegmentCostInputs in;
  in.rows = 1024;
  in.num_sums = 1;
  in.agg_decode_cpr = 0.8;
  in.in_register_feasible = false;
  in.multi_fits = false;
  in.sort_feasible = false;
  in.run_capable = false;
  const SegmentCosts costs = model.ScoreSegment(in);
  EXPECT_LT(
      costs.total_cpr[static_cast<int>(AggregationStrategy::kInRegister)],
      0.0);
  EXPECT_LT(
      costs.total_cpr[static_cast<int>(AggregationStrategy::kMultiAggregate)],
      0.0);
  EXPECT_LT(
      costs.total_cpr[static_cast<int>(AggregationStrategy::kSortBased)],
      0.0);
  EXPECT_LT(costs.total_cpr[static_cast<int>(AggregationStrategy::kRunBased)],
            0.0);
  EXPECT_GE(costs.total_cpr[static_cast<int>(AggregationStrategy::kScalar)],
            0.0);
}

// --- run-admission regression (the latent inconsistency) --------------------

// Run-shaped table whose spans average `span_rows` rows. The heuristic
// admits the run pipeline on span length alone; the model also prices the
// filter's selectivity, which the byteslice admission always consulted but
// run admission never did.
Table MakeSpanTable(size_t rows, size_t span_rows) {
  Table table({
      {"g", ColumnType::kInt64, EncodingChoice::kRle},
      {"f", ColumnType::kInt64, EncodingChoice::kRle},
      {"amount", ColumnType::kInt64, EncodingChoice::kRle},
  });
  TableAppender app(&table, /*segment_rows=*/size_t{1} << 16);
  for (size_t i = 0; i < rows; ++i) {
    const int64_t span = static_cast<int64_t>(i / span_rows);
    app.AppendRow({span % 3, span % 97, (span / 2) % 50});
  }
  app.Flush();
  return table;
}

QuerySpec MakeSpanQuery(int64_t filter_lt) {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount")};
  query.filters.emplace_back("f", CompareOp::kLt, filter_lt);
  return query;
}

PlanDecision FirstDecision(const Table& table, const QuerySpec& query,
                           const ScanOptions& options) {
  BIPieScan scan(table, query, options);
  auto explain = scan.Explain();
  EXPECT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_FALSE(explain.value().segments.empty());
  return explain.value().segments[0].decision;
}

TEST(CostModelAdmissionTest, SelectiveFilterFlipsShortSpanRunAdmission) {
  // 17-row value runs put the combined group+filter span estimate right at
  // the heuristic's 8-row floor, so span length alone admits the run
  // pipeline. The filter passes ~2% of spans: the model prices the span
  // bookkeeping against a row path that touches almost nothing after the
  // filter, and walks away.
  const Table table = MakeSpanTable(/*rows=*/60000, /*span_rows=*/17);
  const QuerySpec query = MakeSpanQuery(/*filter_lt=*/2);

  ScanOptions heuristic;
  const PlanDecision off = FirstDecision(table, query, heuristic);
  ASSERT_TRUE(off.run_capable);
  EXPECT_TRUE(off.run_admitted);  // span floor alone admits (12 >= 8)
  EXPECT_EQ(off.aggregation, AggregationStrategy::kRunBased);

  ScanOptions model;
  model.overrides.cost_model = CostModelMode::kOn;
  const PlanDecision on = FirstDecision(table, query, model);
  ASSERT_EQ(on.cost_model_mode, CostModelMode::kOn);
  // The model prices the selective filter and walks away from the run
  // pipeline: the row path's predicted cycles/row must be what was chosen.
  EXPECT_NE(on.aggregation, AggregationStrategy::kRunBased)
      << "model kept run-based at cpr="
      << on.model_total_cpr[static_cast<int>(AggregationStrategy::kRunBased)];
  const double run_cpr =
      on.model_total_cpr[static_cast<int>(AggregationStrategy::kRunBased)];
  const double chosen_cpr =
      on.model_total_cpr[static_cast<int>(on.aggregation)];
  ASSERT_GE(run_cpr, 0.0);
  ASSERT_GE(chosen_cpr, 0.0);
  EXPECT_LT(chosen_cpr, run_cpr);

  // Both plans still produce the oracle answer (never wrong, only slower).
  auto expected = ExecuteQueryNaive(table, query);
  ASSERT_TRUE(expected.ok());
  auto got_off = ExecuteQuery(table, query, heuristic);
  auto got_on = ExecuteQuery(table, query, model);
  ASSERT_TRUE(got_off.ok());
  ASSERT_TRUE(got_on.ok());
  ASSERT_EQ(got_on.value().rows.size(), expected.value().rows.size());
  for (size_t r = 0; r < expected.value().rows.size(); ++r) {
    EXPECT_EQ(got_on.value().rows[r].group, expected.value().rows[r].group);
    EXPECT_EQ(got_on.value().rows[r].count, expected.value().rows[r].count);
    EXPECT_EQ(got_on.value().rows[r].sums, expected.value().rows[r].sums);
    EXPECT_EQ(got_off.value().rows[r].sums, expected.value().rows[r].sums);
  }
}

TEST(CostModelAdmissionTest, LongSpansStayRunBasedUnderTheModel) {
  // ~6000 rows per span: span bookkeeping is ~free and both deciders agree.
  const Table table = MakeSpanTable(/*rows=*/60000, /*span_rows=*/6000);
  const QuerySpec query = MakeSpanQuery(/*filter_lt=*/5);

  const PlanDecision off = FirstDecision(table, query, {});
  EXPECT_EQ(off.aggregation, AggregationStrategy::kRunBased);

  ScanOptions model;
  model.overrides.cost_model = CostModelMode::kOn;
  const PlanDecision on = FirstDecision(table, query, model);
  EXPECT_EQ(on.aggregation, AggregationStrategy::kRunBased);
}

// --- explain determinism across profile loads and thread counts -------------

TEST(CostModelExplainTest, JsonByteIdenticalAcrossLoadsAndThreadCounts) {
  Table table({
      {"g", ColumnType::kString},
      {"v", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"f", ColumnType::kInt64, EncodingChoice::kBitPacked},
  });
  TableAppender app(&table, /*segment_rows=*/1024);
  Rng rng(909);
  const char* groups[3] = {"x", "y", "z"};
  for (size_t i = 0; i < 4000; ++i) {
    std::vector<int64_t> ints(3, 0);
    std::vector<std::string> strings(3);
    strings[0] = groups[rng.NextBounded(3)];
    ints[1] = rng.NextInRange(0, 5000);
    ints[2] = rng.NextInRange(0, 99);
    app.AppendRow(ints, strings);
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("v")};
  query.filters.emplace_back("f", CompareOp::kLt, int64_t{30});

  std::string reference;
  // Two independent loads of the same serialized profile, three execution
  // models each: every combination must render byte-identical JSON.
  for (int load = 0; load < 2; ++load) {
    const std::vector<uint8_t> image = SerializeProfile(BuiltinProfile());
    auto parsed = ParseProfile(image.data(), image.size());
    ASSERT_TRUE(parsed.ok());
    const CalibrationProfile previous =
        InstallProfileForProcess(parsed.value());
    for (const size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
      ScanOptions options;
      options.num_threads = threads;
      options.overrides.cost_model = CostModelMode::kOn;
      BIPieScan scan(table, query, options);
      auto explain = scan.Explain();
      ASSERT_TRUE(explain.ok()) << explain.status().ToString();
      const std::string json = explain.value().ToJson();
      EXPECT_NE(json.find("\"cost_model\""), std::string::npos);
      if (reference.empty()) {
        reference = json;
      } else {
        EXPECT_EQ(json, reference)
            << "load " << load << " threads " << threads;
      }
    }
    InstallProfileForProcess(previous);
  }
}

}  // namespace
}  // namespace cost
}  // namespace bipie
