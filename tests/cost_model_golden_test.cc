// Golden-file tests for the calibrated cost model (DESIGN.md §17).
//
// Two surfaces are pinned byte-for-byte under the builtin profile:
//
//  * the decision table — ScoreSegment's chosen strategy, predicted
//    selection, byteslice verdict and predicted cycles/row over a grid of
//    segment shapes × selectivities. Any retuning of the builtin constants
//    or change to the pipeline laws shows up as a diff here first;
//  * the explain renderings (text + JSON) of real plans under
//    cost_model=off/on/adaptive, including the model cost block and the
//    model-derived byteslice reasons.
//
// To regenerate after an intentional model change:
//
//   ./cost_model_golden_test --update-golden
//
// then review the diff — decision churn IS the review surface for cost
// model changes. Everything here must be machine-independent: the builtin
// profile is deterministic and ScoreSegment is pure arithmetic on it.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/random.h"
#include "core/scan.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"
#include "obs/plan_explain.h"
#include "storage/table.h"

#ifndef BIPIE_GOLDEN_DIR
#error "BIPIE_GOLDEN_DIR must be defined to the tests/golden directory"
#endif

namespace bipie {
namespace {

bool g_update_golden = false;

std::string GoldenPath(const std::string& name, const char* ext) {
  return std::string(BIPIE_GOLDEN_DIR) + "/" + name + "." + ext;
}

void CompareWithGolden(const std::string& name, const char* ext,
                       const std::string& actual) {
  const std::string path = GoldenPath(name, ext);
  if (g_update_golden) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run cost_model_golden_test --update-golden";
  std::ostringstream content;
  content << in.rdbuf();
  EXPECT_EQ(actual, content.str())
      << "cost model output diverged from " << path
      << " — if the model change is intentional, regenerate with "
         "cost_model_golden_test --update-golden and review the diff";
}

void CheckCase(const std::string& name, const Table& table,
               const QuerySpec& query, const ScanOptions& options = {}) {
  BIPieScan scan(table, query, options);
  auto explain = scan.Explain();
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  CompareWithGolden(name, "txt", explain.value().ToText());
  CompareWithGolden(name, "json", explain.value().ToJson() + "\n");
}

// --- decision-table golden --------------------------------------------------

// One named segment shape; the table sweeps it across selectivities.
struct Shape {
  const char* name;
  cost::SegmentCostInputs in;
};

std::vector<Shape> DecisionShapes(const cost::CostModel& model) {
  std::vector<Shape> shapes;
  {
    // Narrow dictionary groups, two packed sums: every row strategy open.
    Shape s{"all-open", {}};
    s.in.rows = 4096;
    s.in.group_decode_cpr = model.DecodeCyclesPerRow(Encoding::kDictionary,
                                                     /*bit_width=*/3,
                                                     s.in.rows, /*runs=*/1);
    s.in.agg_decode_cpr = 2.0 * model.UnpackCyclesPerRow(12);
    s.in.num_sums = 2;
    s.in.in_register_feasible = true;
    s.in.multi_fits = true;
    s.in.sort_feasible = true;
    s.in.special_group_available = true;
    shapes.push_back(s);
  }
  {
    // Wide aggregate inputs: only the scalar/checked pair stays feasible.
    Shape s{"wide-scalar", {}};
    s.in.rows = 4096;
    s.in.group_decode_cpr = model.DecodeCyclesPerRow(Encoding::kDictionary,
                                                     /*bit_width=*/3,
                                                     s.in.rows, /*runs=*/1);
    s.in.agg_decode_cpr = model.UnpackCyclesPerRow(50);
    s.in.num_sums = 1;
    shapes.push_back(s);
  }
  {
    // Run-shaped segment, short (~12 row) spans.
    Shape s{"run-short", {}};
    s.in.rows = 49152;
    s.in.group_decode_cpr = model.DecodeCyclesPerRow(
        Encoding::kRle, /*bit_width=*/2, s.in.rows, s.in.rows / 12);
    s.in.agg_decode_cpr = model.DecodeCyclesPerRow(
        Encoding::kRle, /*bit_width=*/6, s.in.rows, s.in.rows / 24);
    s.in.num_sums = 1;
    s.in.run_capable = true;
    s.in.run_spans = s.in.rows / 12;
    s.in.run_agg_cpr = 0.05;
    s.in.sort_feasible = true;
    s.in.special_group_available = true;
    shapes.push_back(s);
  }
  {
    // Run-shaped segment, long (~6000 row) spans.
    Shape s{"run-long", {}};
    s.in = shapes.back().in;
    s.in.run_spans = s.in.rows / 6000;
    shapes.push_back(s);
  }
  {
    // 3-plane byteslice filter column next to packed aggregates.
    Shape s{"byteslice3", {}};
    s.in.rows = 2048;
    s.in.group_decode_cpr = model.DecodeCyclesPerRow(Encoding::kDictionary,
                                                     /*bit_width=*/3,
                                                     s.in.rows, /*runs=*/1);
    s.in.agg_decode_cpr = model.UnpackCyclesPerRow(9);
    s.in.num_sums = 1;
    s.in.byteslice_capable = true;
    s.in.in_register_feasible = true;
    s.in.sort_feasible = true;
    s.in.special_group_available = true;
    shapes.push_back(s);
  }
  return shapes;
}

TEST(CostModelGoldenTest, DecisionTable) {
  const cost::CalibrationProfile profile = cost::BuiltinProfile();
  const cost::CostModel model(profile);
  const double selectivities[6] = {0.02, 0.10, 0.25, 0.50, 0.80, 0.95};
  std::string out =
      "cost model decision table (builtin profile)\n"
      "shape       sel   chosen           selection      byteslice  "
      "cpr      xover\n";
  char line[160];
  for (const Shape& shape : DecisionShapes(model)) {
    for (const double s : selectivities) {
      cost::SegmentCostInputs in = shape.in;
      in.filtered = true;
      in.selectivity = s;
      // Filter: one predicate on a 22-bit column; byteslice-capable shapes
      // also price the plane kernels at this selectivity.
      in.filter_decode_cpr = model.UnpackCyclesPerRow(22) +
                             model.CompareCyclesPerRow(22);
      in.filter_byteslice_cpr =
          in.byteslice_capable ? model.ByteSliceFilterCyclesPerRow(3, s)
                               : -1.0;
      const cost::SegmentCosts costs = model.ScoreSegment(in);
      std::snprintf(
          line, sizeof(line),
          "%-11s %.2f  %-16s %-14s %-10s %.4f   %.4f\n", shape.name, s,
          AggregationStrategyName(costs.chosen),
          SelectionStrategyName(costs.predicted_selection),
          costs.use_byteslice ? "planes" : "decode",
          costs.total_cpr[static_cast<int>(costs.chosen)],
          costs.gather_crossover);
      out += line;
    }
  }
  CompareWithGolden("cost_decision_table", "txt", out);
}

// --- explain goldens (mixed / run / byteslice tables × modes) ---------------

// Dictionary string group + bit-packed value columns, three segments
// (mirrors explain_golden_test's mixed table, same seed).
Table MakeMixedTable() {
  Table table({
      {"g", ColumnType::kString},
      {"narrow", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"wide", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"filter_col", ColumnType::kInt64, EncodingChoice::kBitPacked},
  });
  TableAppender app(&table, /*segment_rows=*/1024);
  Rng rng(4001);
  const char* groups[4] = {"east", "west", "north", "south"};
  for (size_t i = 0; i < 3000; ++i) {
    std::vector<int64_t> ints(4, 0);
    std::vector<std::string> strings(4);
    strings[0] = groups[rng.NextBounded(4)];
    ints[1] = rng.NextInRange(0, 127);
    ints[2] = rng.NextInRange(0, (1 << 20) - 1);
    ints[3] = rng.NextInRange(0, 999);
    app.AppendRow(ints, strings);
  }
  app.Flush();
  return table;
}

QuerySpec MakeMixedQuery() {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("narrow"),
                      AggregateSpec::Sum("wide")};
  query.filters.emplace_back("filter_col", CompareOp::kLt, int64_t{250});
  return query;
}

Table MakeRunTable() {
  Table table({
      {"g", ColumnType::kInt64, EncodingChoice::kRle},
      {"f", ColumnType::kInt64, EncodingChoice::kRle},
      {"amount", ColumnType::kInt64, EncodingChoice::kRle},
  });
  TableAppender app(&table, /*segment_rows=*/size_t{1} << 16);
  for (size_t i = 0; i < 60000; ++i) {
    app.AppendRow({static_cast<int64_t>((i / 10000) % 3),
                   static_cast<int64_t>((i / 7000) % 4),
                   static_cast<int64_t>((i / 6000) % 50)});
  }
  app.Flush();
  return table;
}

Table MakeByteSliceTable() {
  Table table({
      {"g", ColumnType::kInt64, EncodingChoice::kDictionary},
      {"sliced", ColumnType::kInt64, EncodingChoice::kByteSliced},
      {"amount", ColumnType::kInt64, EncodingChoice::kBitPacked},
  });
  TableAppender app(&table, /*segment_rows=*/2048);
  Rng rng(4004);
  for (size_t i = 0; i < 5000; ++i) {
    app.AppendRow({rng.NextInRange(0, 5),
                   rng.NextInRange(0, (int64_t{1} << 22) - 1),
                   rng.NextInRange(0, 499)});
  }
  app.Flush();
  return table;
}

QuerySpec MakeByteSliceQuery(int64_t threshold) {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount")};
  query.filters.emplace_back("sliced", CompareOp::kLt, threshold);
  return query;
}

ScanOptions WithMode(CostModelMode mode) {
  ScanOptions options;
  options.overrides.cost_model = mode;
  return options;
}

TEST(CostModelGoldenTest, MixedOff) {
  // Off must render no cost block at all — byte-identical to the legacy
  // explain for this plan.
  CheckCase("cost_mixed_off", MakeMixedTable(), MakeMixedQuery(),
            WithMode(CostModelMode::kOff));
}

TEST(CostModelGoldenTest, MixedOn) {
  CheckCase("cost_mixed_on", MakeMixedTable(), MakeMixedQuery(),
            WithMode(CostModelMode::kOn));
}

TEST(CostModelGoldenTest, MixedAdaptive) {
  CheckCase("cost_mixed_adaptive", MakeMixedTable(), MakeMixedQuery(),
            WithMode(CostModelMode::kAdaptive));
}

TEST(CostModelGoldenTest, RunOn) {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount")};
  query.filters.emplace_back("f", CompareOp::kLt, int64_t{2});
  CheckCase("cost_run_on", MakeRunTable(), query,
            WithMode(CostModelMode::kOn));
}

TEST(CostModelGoldenTest, ByteSliceSelectiveOn) {
  // ~6% selectivity: the model admits the plane kernels.
  CheckCase("cost_byteslice_selective_on", MakeByteSliceTable(),
            MakeByteSliceQuery(int64_t{1} << 18),
            WithMode(CostModelMode::kOn));
}

TEST(CostModelGoldenTest, ByteSliceBroadOn) {
  // ~97% selectivity: the model prices the planes above the decode path.
  CheckCase("cost_byteslice_broad_on", MakeByteSliceTable(),
            MakeByteSliceQuery((int64_t{1} << 22) - 100000),
            WithMode(CostModelMode::kOn));
}

}  // namespace
}  // namespace bipie

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--update-golden") {
      bipie::g_update_golden = true;
    }
  }
  return RUN_ALL_TESTS();
}
