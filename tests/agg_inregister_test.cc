#include "vector/agg_inregister.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"

namespace bipie {
namespace {

class InRegisterGroups : public ::testing::TestWithParam<int> {};

TEST_P(InRegisterGroups, CountMatchesReference) {
  const int num_groups = GetParam();
  // Length exceeds the 255-vector flush cadence (255 * 32 = 8160 rows) so
  // the lane-saturation drain path is exercised.
  const size_t n = 9000;
  auto groups = test::RandomGroups(n, num_groups, 40 + num_groups);
  std::vector<uint64_t> expected(num_groups, 0);
  for (size_t i = 0; i < n; ++i) ++expected[groups.data()[i]];
  test::ForEachIsaTier([&](IsaTier tier) {
    std::vector<uint64_t> counts(num_groups, 0);
    InRegisterCount(groups.data(), n, num_groups, counts.data());
    ASSERT_EQ(counts, expected)
        << "groups=" << num_groups << " tier=" << IsaTierName(tier);
  });
}

TEST_P(InRegisterGroups, Sum8MatchesReference) {
  const int num_groups = GetParam();
  // Exceeds the 64-vector (2048-row) flush cadence with max-valued bytes.
  const size_t n = 5000;
  auto groups = test::RandomGroups(n, num_groups, 50 + num_groups);
  AlignedBuffer values(n);
  Rng rng(60 + num_groups);
  for (size_t i = 0; i < n; ++i) {
    values.data()[i] = static_cast<uint8_t>(rng.NextBounded(256));
  }
  std::vector<uint64_t> expected(num_groups, 0);
  for (size_t i = 0; i < n; ++i) {
    expected[groups.data()[i]] += values.data()[i];
  }
  test::ForEachIsaTier([&](IsaTier tier) {
    std::vector<uint64_t> sums(num_groups, 0);
    InRegisterSum8(groups.data(), values.data(), n, num_groups, sums.data());
    ASSERT_EQ(sums, expected)
        << "groups=" << num_groups << " tier=" << IsaTierName(tier);
  });
}

TEST_P(InRegisterGroups, Sum16MatchesReference) {
  const int num_groups = GetParam();
  const size_t n = 4001;
  auto groups = test::RandomGroups(n, num_groups, 70 + num_groups);
  AlignedBuffer values(n * 2);
  Rng rng(80 + num_groups);
  for (size_t i = 0; i < n; ++i) {
    // Contract: values < 2^15.
    values.data_as<uint16_t>()[i] =
        static_cast<uint16_t>(rng.NextBounded(1 << 15));
  }
  std::vector<uint64_t> expected(num_groups, 0);
  for (size_t i = 0; i < n; ++i) {
    expected[groups.data()[i]] += values.data_as<uint16_t>()[i];
  }
  test::ForEachIsaTier([&](IsaTier tier) {
    std::vector<uint64_t> sums(num_groups, 0);
    InRegisterSum16(groups.data(), values.data_as<uint16_t>(), n, num_groups,
                    sums.data());
    ASSERT_EQ(sums, expected)
        << "groups=" << num_groups << " tier=" << IsaTierName(tier);
  });
}

TEST_P(InRegisterGroups, Sum32MatchesReference) {
  const int num_groups = GetParam();
  const size_t n = 3007;
  auto groups = test::RandomGroups(n, num_groups, 90 + num_groups);
  AlignedBuffer values(n * 4);
  Rng rng(95 + num_groups);
  const uint64_t max_value = (1u << 28) - 1;
  for (size_t i = 0; i < n; ++i) {
    values.data_as<uint32_t>()[i] =
        static_cast<uint32_t>(rng.NextBounded(max_value + 1));
  }
  std::vector<uint64_t> expected(num_groups, 0);
  for (size_t i = 0; i < n; ++i) {
    expected[groups.data()[i]] += values.data_as<uint32_t>()[i];
  }
  test::ForEachIsaTier([&](IsaTier tier) {
    std::vector<uint64_t> sums(num_groups, 0);
    InRegisterSum32(groups.data(), values.data_as<uint32_t>(), n, num_groups,
                    max_value, sums.data());
    ASSERT_EQ(sums, expected)
        << "groups=" << num_groups << " tier=" << IsaTierName(tier);
  });
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, InRegisterGroups,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 12, 16, 24,
                                           31, 32));

TEST(InRegisterTest, Sum32MaxValueForcesPerVectorFlush) {
  // max_value near 2^32 makes every vector flush; correctness must hold.
  const size_t n = 200;
  auto groups = test::RandomGroups(n, 4, 7);
  AlignedBuffer values(n * 4);
  Rng rng(8);
  uint64_t expected[4] = {0, 0, 0, 0};
  for (size_t i = 0; i < n; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.Next());
    values.data_as<uint32_t>()[i] = v;
    expected[groups.data()[i]] += v;
  }
  std::vector<uint64_t> sums(4, 0);
  InRegisterSum32(groups.data(), values.data_as<uint32_t>(), n, 4,
                  0xFFFFFFFFULL, sums.data());
  for (int g = 0; g < 4; ++g) EXPECT_EQ(sums[g], expected[g]);
}

TEST(InRegisterTest, CountShortTail) {
  // Fewer rows than one SIMD vector.
  std::vector<uint8_t> groups = {0, 1, 1, 2};
  std::vector<uint64_t> counts(3, 0);
  InRegisterCount(groups.data(), groups.size(), 3, counts.data());
  EXPECT_EQ(counts, (std::vector<uint64_t>{1, 2, 1}));
}

TEST(InRegisterTest, AccumulatesAcrossCalls) {
  auto groups = test::RandomGroups(1000, 8, 3);
  std::vector<uint64_t> expected(8, 0);
  for (size_t i = 0; i < 1000; ++i) ++expected[groups.data()[i]];
  std::vector<uint64_t> counts(8, 0);
  InRegisterCount(groups.data(), 400, 8, counts.data());
  InRegisterCount(groups.data() + 400, 600, 8, counts.data());
  EXPECT_EQ(counts, expected);
}

TEST(InRegisterTest, InstructionCountsMatchPaperTable3Shape) {
  const auto counts = GetInRegisterInstructionCounts();
  // Monotonic cost growth with value width, count cheapest — Table 3's
  // qualitative shape.
  EXPECT_LT(counts.count_star, counts.sum8);
  EXPECT_LT(counts.sum8, counts.sum16);
  EXPECT_LT(counts.sum16, counts.sum32);
}

}  // namespace
}  // namespace bipie
