#include "common/status.h"

#include <gtest/gtest.h>

namespace bipie {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad bit width");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad bit width");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad bit width");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::OverflowRisk("x").code(), StatusCode::kOverflowRisk);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotSupported("no simd"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotSupported);
}

TEST(ResultTest, ValueOrDieMovesValue) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(std::move(r).ValueOrDie(), "hello");
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    BIPIE_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace bipie
