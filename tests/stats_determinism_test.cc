// ScanStats must be a pure function of (table, query, options modulo
// parallelism): the same scan at num_threads 0 (shared pool), 1 (inline)
// and 4 (legacy spawn) must report byte-identical stats and explain JSON
// (DESIGN.md §12). This pins down the whole reduction pipeline — per-morsel
// stats, the work_index-ordered merge, once-per-segment strategy counting —
// as scheduling-independent; TSan runs this file in CI as the stats-race
// canary.
//
// Segments here are kept at or below kDefaultMorselRows on purpose: a
// pooled scan splits larger segments into 64K-row morsels, and an RLE run
// crossing a morsel boundary is aggregated as one span per morsel — so
// runs_aggregated is partition-dependent for oversized segments. Within
// one-morsel segments every path sees identical partitions.
#include "core/scan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "obs/plan_explain.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace bipie {
namespace {

void ExpectSameStats(const ScanStats& got, const ScanStats& base,
                     const std::string& context) {
  EXPECT_EQ(got.used_hash_fallback, base.used_hash_fallback) << context;
  EXPECT_EQ(got.segments_scanned, base.segments_scanned) << context;
  EXPECT_EQ(got.segments_eliminated, base.segments_eliminated) << context;
  EXPECT_EQ(got.batches, base.batches) << context;
  EXPECT_EQ(got.rows_scanned, base.rows_scanned) << context;
  EXPECT_EQ(got.rows_selected, base.rows_selected) << context;
  EXPECT_EQ(got.runs_aggregated, base.runs_aggregated) << context;
  EXPECT_EQ(got.rows_run_aggregated, base.rows_run_aggregated) << context;
  EXPECT_EQ(got.selection.gather, base.selection.gather) << context;
  EXPECT_EQ(got.selection.compact, base.selection.compact) << context;
  EXPECT_EQ(got.selection.special_group, base.selection.special_group)
      << context;
  EXPECT_EQ(got.selection.unfiltered, base.selection.unfiltered) << context;
  for (int a = 0; a < kNumAggregationStrategies; ++a) {
    EXPECT_EQ(got.aggregation_segments[a], base.aggregation_segments[a])
        << context << " strategy " << a;
  }
}

// Runs the scan at every parallelism model and checks stats + explain JSON
// never vary. The (thread-count-invariant) stats land in *out for extra
// checks. (ASSERT_* requires a void return, hence the out-parameter.)
void CheckDeterminism(const Table& table, const QuerySpec& query,
                      ScanStats* out, ScanOptions base_options = {}) {
  ScanStats reference{};
  std::string reference_json;
  bool first = true;
  for (const size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    ScanOptions options = base_options;
    options.num_threads = threads;
    BIPieScan scan(table, query, options);
    const std::string context = "num_threads=" + std::to_string(threads);

    auto explain = scan.Explain();
    ASSERT_TRUE(explain.ok()) << context;

    auto got = scan.Execute();
    ASSERT_TRUE(got.ok()) << context << ": " << got.status().ToString();
    BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());

    if (first) {
      reference = scan.stats();
      reference_json = explain.value().ToJson();
      first = false;
    } else {
      ExpectSameStats(scan.stats(), reference, context);
      EXPECT_EQ(explain.value().ToJson(), reference_json) << context;
    }
  }
  *out = reference;
}

// Mixed-width table with a dictionary group column; segments of
// `segment_rows` rows (keep <= kDefaultMorselRows, see file comment).
Table MakeMixedTable(size_t rows, size_t segment_rows, uint64_t seed) {
  Table table({
      {"g", ColumnType::kString},
      {"narrow", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"wide", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"filter_col", ColumnType::kInt64, EncodingChoice::kBitPacked},
  });
  TableAppender app(&table, segment_rows);
  Rng rng(seed);
  const char* groups[5] = {"a", "b", "c", "d", "e"};
  for (size_t i = 0; i < rows; ++i) {
    std::vector<int64_t> ints(4, 0);
    std::vector<std::string> strings(4);
    strings[0] = groups[rng.NextBounded(5)];
    ints[1] = rng.NextInRange(0, 127);
    ints[2] = rng.NextInRange(0, (1 << 24) - 1);
    ints[3] = rng.NextInRange(0, 999);
    app.AppendRow(ints, strings);
  }
  app.Flush();
  return table;
}

Table MakeRunTable(size_t rows, size_t segment_rows) {
  Table table({
      {"g", ColumnType::kInt64, EncodingChoice::kRle},
      {"f", ColumnType::kInt64, EncodingChoice::kRle},
      {"amount", ColumnType::kInt64, EncodingChoice::kRle},
  });
  TableAppender app(&table, segment_rows);
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({static_cast<int64_t>((i / 5000) % 4),
                   static_cast<int64_t>((i / 3500) % 3),
                   static_cast<int64_t>((i / 2000) % 40)});
  }
  app.Flush();
  return table;
}

TEST(StatsDeterminismTest, FilteredGroupByAcrossThreadCounts) {
  Table table = MakeMixedTable(40000, 8192, 9001);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("narrow"),
                      AggregateSpec::Sum("wide")};
  query.filters.emplace_back("filter_col", CompareOp::kLt, int64_t{400});
  ScanStats stats{};
  CheckDeterminism(table, query, &stats);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_LT(stats.rows_selected, stats.rows_scanned);
}

TEST(StatsDeterminismTest, UnfilteredScanAcrossThreadCounts) {
  Table table = MakeMixedTable(30000, 4096, 9002);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("narrow")};
  ScanStats stats{};
  CheckDeterminism(table, query, &stats);
  EXPECT_EQ(stats.rows_selected, stats.rows_scanned);
}

TEST(StatsDeterminismTest, RunBasedScanAcrossThreadCounts) {
  // One-morsel segments: run spans never cross a pooled morsel boundary, so
  // runs_aggregated is identical across all three execution models.
  Table table = MakeRunTable(60000, size_t{1} << 16);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount")};
  query.filters.emplace_back("f", CompareOp::kLt, int64_t{2});
  ScanStats stats{};
  CheckDeterminism(table, query, &stats);
  EXPECT_GT(stats.runs_aggregated, 0u);
  EXPECT_EQ(stats.batches, 0u);
}

TEST(StatsDeterminismTest, HashFallbackAcrossThreadCounts) {
  Table table({{"g1", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"g2", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  Rng rng(9003);
  for (int i = 0; i < 20000; ++i) {
    app.AppendRow({rng.NextInRange(0, 39), rng.NextInRange(0, 19),
                   rng.NextInRange(0, 99)});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g1", "g2"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("x")};
  ScanStats stats{};
  CheckDeterminism(table, query, &stats);
  EXPECT_TRUE(stats.used_hash_fallback);
}

TEST(StatsDeterminismTest, EliminationAcrossThreadCounts) {
  Table table = MakeMixedTable(20000, 4096, 9004);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count()};
  query.filters.emplace_back("filter_col", CompareOp::kLt, int64_t{-1});
  ScanStats stats{};
  CheckDeterminism(table, query, &stats);
  EXPECT_EQ(stats.segments_scanned, 0u);
  EXPECT_GT(stats.segments_eliminated, 0u);
}

// Regression: under morsel execution a segment is scanned by many morsels,
// but its aggregation strategy must be counted exactly once (the
// counts_segment flag on the first morsel). Tiny one-batch morsels maximize
// the over-counting surface.
TEST(StatsDeterminismTest, AggregationSegmentsCountedOncePerSegment) {
  Table table = MakeMixedTable(60000, 8192, 9005);
  const size_t num_segments = table.num_segments();
  ASSERT_GT(num_segments, 4u);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("narrow")};
  query.filters.emplace_back("filter_col", CompareOp::kLt, int64_t{700});

  for (const size_t morsel_rows : {size_t{4096}, size_t{8192}}) {
    ScanOptions options;
    options.num_threads = 0;  // pooled: segments split into morsels
    options.morsel_rows = morsel_rows;
    BIPieScan scan(table, query, options);
    auto got = scan.Execute();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
    const std::string context = "morsel_rows=" + std::to_string(morsel_rows);
    size_t total = 0;
    for (int a = 0; a < kNumAggregationStrategies; ++a) {
      total += scan.stats().aggregation_segments[a];
    }
    EXPECT_EQ(total, num_segments) << context;
    EXPECT_EQ(scan.stats().segments_scanned, num_segments) << context;
  }
}

}  // namespace
}  // namespace bipie
