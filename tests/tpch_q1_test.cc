#include "tpch/q1.h"

#include <gtest/gtest.h>

#include "baseline/hash_agg.h"
#include "baseline/scalar_engine.h"

namespace bipie {
namespace {

LineitemOptions SmallOptions() {
  LineitemOptions options;
  options.num_rows = 50000;
  options.segment_rows = 16384;
  options.seed = 42;
  return options;
}

TEST(LineitemTest, GeneratorShape) {
  Table t = MakeLineitemTable(SmallOptions());
  EXPECT_EQ(t.num_rows(), 50000u);
  EXPECT_EQ(t.num_segments(), 4u);  // 3 x 16384 + remainder

  const Segment& seg = t.segment(0);
  // Flags {A, N, R}, statuses {F, O}.
  EXPECT_EQ(seg.column(kColReturnFlag).string_dictionary()->size(), 3u);
  EXPECT_EQ(seg.column(kColLineStatus).string_dictionary()->size(), 2u);
  // Quantity stored in hundredths of units 1..50.
  EXPECT_GE(seg.column(kColQuantity).meta().min, 100);
  EXPECT_LE(seg.column(kColQuantity).meta().max, 5000);
  // Discount and tax stay in their TPC-H ranges.
  EXPECT_GE(seg.column(kColDiscount).meta().min, 0);
  EXPECT_LE(seg.column(kColDiscount).meta().max, 10);
  EXPECT_LE(seg.column(kColTax).meta().max, 8);
  // Shipdate spans the 7-year window.
  EXPECT_GE(seg.column(kColShipDate).meta().min, kShipDateMin);
  EXPECT_LE(seg.column(kColShipDate).meta().max, kShipDateMax);
}

TEST(LineitemTest, DeterministicForSeed) {
  Table a = MakeLineitemTable(SmallOptions());
  Table b = MakeLineitemTable(SmallOptions());
  std::vector<int64_t> va(100), vb(100);
  a.segment(0).column(kColExtendedPrice).DecodeInt64(0, 100, va.data());
  b.segment(0).column(kColExtendedPrice).DecodeInt64(0, 100, vb.data());
  EXPECT_EQ(va, vb);
}

TEST(Q1Test, FilterSelectivityIsNear98Percent) {
  Table t = MakeLineitemTable(SmallOptions());
  BIPieScan scan(t, MakeQ1Query(t));
  auto result = scan.Execute();
  ASSERT_TRUE(result.ok());
  const double selectivity =
      static_cast<double>(scan.stats().rows_selected) /
      static_cast<double>(scan.stats().rows_scanned);
  EXPECT_NEAR(selectivity, 0.964, 0.02);  // 2436/2526 days pass
}

TEST(Q1Test, ProducesTheFourClassicGroups) {
  Table t = MakeLineitemTable(SmallOptions());
  auto result = RunQ1(t);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 4u);
  auto flag = [&](size_t r) {
    return result.value().rows[r].group[0].string_value;
  };
  auto status = [&](size_t r) {
    return result.value().rows[r].group[1].string_value;
  };
  // Sorted by (returnflag, linestatus): A/F, N/F, N/O, R/F.
  EXPECT_EQ(flag(0), "A"); EXPECT_EQ(status(0), "F");
  EXPECT_EQ(flag(1), "N"); EXPECT_EQ(status(1), "F");
  EXPECT_EQ(flag(2), "N"); EXPECT_EQ(status(2), "O");
  EXPECT_EQ(flag(3), "R"); EXPECT_EQ(status(3), "F");
  // N/F is the thin band.
  EXPECT_LT(result.value().rows[1].count, result.value().rows[2].count / 10);
}

TEST(Q1Test, MatchesNaiveOracleExactly) {
  Table t = MakeLineitemTable(SmallOptions());
  const QuerySpec query = MakeQ1Query(t);
  auto expected = ExecuteQueryNaive(t, query);
  ASSERT_TRUE(expected.ok());
  auto got = RunQ1(t);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().rows.size(), expected.value().rows.size());
  for (size_t r = 0; r < got.value().rows.size(); ++r) {
    EXPECT_EQ(got.value().rows[r].group, expected.value().rows[r].group);
    EXPECT_EQ(got.value().rows[r].count, expected.value().rows[r].count);
    EXPECT_EQ(got.value().rows[r].sums, expected.value().rows[r].sums);
  }
}

TEST(Q1Test, AllEnginesAgree) {
  Table t = MakeLineitemTable(SmallOptions());
  const QuerySpec query = MakeQ1Query(t);
  auto bipie = RunQ1(t);
  auto hash = ExecuteQueryHashAgg(t, query);
  ASSERT_TRUE(bipie.ok());
  ASSERT_TRUE(hash.ok());
  ASSERT_EQ(bipie.value().rows.size(), hash.value().rows.size());
  for (size_t r = 0; r < bipie.value().rows.size(); ++r) {
    EXPECT_EQ(bipie.value().rows[r].sums, hash.value().rows[r].sums);
    EXPECT_EQ(bipie.value().rows[r].count, hash.value().rows[r].count);
  }
}

TEST(Q1Test, UsesMultiAggregateAndSpecialGroup) {
  // §6.3: special-group selection feeds multi-aggregate sums; all five
  // sums (after sharing qty between sum and avg) fit one register.
  Table t = MakeLineitemTable(SmallOptions());
  BIPieScan scan(t, MakeQ1Query(t));
  ASSERT_TRUE(scan.Execute().ok());
  EXPECT_GT(scan.stats().aggregation_segments[static_cast<int>(
                AggregationStrategy::kMultiAggregate)],
            0u);
  EXPECT_GT(scan.stats().selection.special_group, 0u);
}

TEST(Q1Test, EveryStrategyComboMatches) {
  Table t = MakeLineitemTable(SmallOptions());
  const QuerySpec query = MakeQ1Query(t);
  auto expected = ExecuteQueryNaive(t, query);
  ASSERT_TRUE(expected.ok());
  for (auto sel : {SelectionStrategy::kGather, SelectionStrategy::kCompact,
                   SelectionStrategy::kSpecialGroup}) {
    for (auto agg :
         {AggregationStrategy::kScalar, AggregationStrategy::kSortBased,
          AggregationStrategy::kMultiAggregate}) {
      ScanOptions options;
      options.overrides.selection = sel;
      options.overrides.aggregation = agg;
      auto got = RunQ1(t, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got.value().rows.size(), expected.value().rows.size());
      for (size_t r = 0; r < got.value().rows.size(); ++r) {
        ASSERT_EQ(got.value().rows[r].sums, expected.value().rows[r].sums)
            << SelectionStrategyName(sel) << "+"
            << AggregationStrategyName(agg);
      }
    }
  }
}

TEST(Q1Test, FormatterProducesPsqlishTable) {
  Table t = MakeLineitemTable(SmallOptions());
  auto result = RunQ1(t);
  ASSERT_TRUE(result.ok());
  const std::string text = FormatQ1Result(result.value());
  EXPECT_NE(text.find("sum_disc_price"), std::string::npos);
  EXPECT_NE(text.find("A      F"), std::string::npos);
  // Header + 4 groups.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

}  // namespace
}  // namespace bipie
