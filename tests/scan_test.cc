#include "core/scan.h"

#include "tests/test_util.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "baseline/hash_agg.h"
#include "baseline/scalar_engine.h"
#include "common/random.h"

namespace bipie {
namespace {

void ExpectSameResults(const QueryResult& got, const QueryResult& expected,
                       const std::string& context) {
  ASSERT_EQ(got.rows.size(), expected.rows.size()) << context;
  for (size_t r = 0; r < got.rows.size(); ++r) {
    ASSERT_EQ(got.rows[r].group, expected.rows[r].group)
        << context << " row " << r;
    ASSERT_EQ(got.rows[r].count, expected.rows[r].count)
        << context << " row " << r;
    ASSERT_EQ(got.rows[r].sums, expected.rows[r].sums)
        << context << " row " << r;
  }
}

// A mixed-width table: dictionary string group column, and aggregate
// columns covering the 1/2/4-byte unpack classes plus a negative-base FOR
// column.
Table MakeMixedTable(size_t rows, size_t segment_rows, uint64_t seed) {
  Table table({
      {"g", ColumnType::kString},
      {"narrow", ColumnType::kInt64, EncodingChoice::kBitPacked},   // 7 bit
      {"medium", ColumnType::kInt64, EncodingChoice::kBitPacked},   // 14 bit
      {"wide", ColumnType::kInt64, EncodingChoice::kBitPacked},     // 28 bit
      {"negative", ColumnType::kInt64, EncodingChoice::kBitPacked},
      {"filter_col", ColumnType::kInt64, EncodingChoice::kBitPacked},
  });
  TableAppender app(&table, segment_rows);
  Rng rng(seed);
  const char* groups[6] = {"g0", "g1", "g2", "g3", "g4", "g5"};
  for (size_t i = 0; i < rows; ++i) {
    std::vector<int64_t> ints(6, 0);
    std::vector<std::string> strings(6);
    strings[0] = groups[rng.NextBounded(6)];
    ints[1] = rng.NextInRange(0, 127);
    ints[2] = rng.NextInRange(0, (1 << 14) - 1);
    ints[3] = rng.NextInRange(0, (1 << 28) - 1);
    ints[4] = rng.NextInRange(-500, 500);
    ints[5] = rng.NextInRange(0, 999);
    app.AppendRow(ints, strings);
  }
  app.Flush();
  return table;
}

QuerySpec MakeQuery(int num_sums, bool with_filter, int64_t filter_lit) {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates.push_back(AggregateSpec::Count());
  const char* sum_cols[4] = {"narrow", "medium", "wide", "negative"};
  for (int i = 0; i < num_sums && i < 4; ++i) {
    query.aggregates.push_back(AggregateSpec::Sum(sum_cols[i]));
  }
  if (with_filter) {
    query.filters.emplace_back("filter_col", CompareOp::kLt, filter_lit);
  }
  return query;
}

// The paper's §6.2 matrix: every selection strategy crossed with every
// aggregation strategy must produce identical results.
class AllStrategyCombos
    : public ::testing::TestWithParam<
          std::tuple<SelectionStrategy, AggregationStrategy, int>> {};

TEST_P(AllStrategyCombos, MatchNaiveOracle) {
  const auto [sel, agg, sel_pct] = GetParam();
  Table table = MakeMixedTable(10000, 4096, 77);
  // filter_col < lit gives ~sel_pct% selectivity.
  QuerySpec query = MakeQuery(3, true, sel_pct * 10);
  auto expected = ExecuteQueryNaive(table, query);
  ASSERT_TRUE(expected.ok());

  ScanOptions options;
  options.overrides.selection = sel;
  options.overrides.aggregation = agg;
  BIPieScan scan(table, query, options);
  auto got = scan.Execute();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
  ExpectSameResults(got.value(), expected.value(),
                    std::string(SelectionStrategyName(sel)) + "+" +
                        AggregationStrategyName(agg));
  // The forced aggregation strategy must actually have been used.
  EXPECT_GT(scan.stats().aggregation_segments[static_cast<int>(agg)], 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllStrategyCombos,
    ::testing::Combine(
        ::testing::Values(SelectionStrategy::kGather,
                          SelectionStrategy::kCompact,
                          SelectionStrategy::kSpecialGroup),
        ::testing::Values(AggregationStrategy::kScalar,
                          AggregationStrategy::kInRegister,
                          AggregationStrategy::kSortBased,
                          AggregationStrategy::kMultiAggregate),
        ::testing::Values(2, 50, 98)));

TEST(ScanTest, AdaptiveStrategySelectionMatchesOracle) {
  Table table = MakeMixedTable(20000, 4096, 88);
  for (int num_sums : {0, 1, 2, 4}) {
    for (bool filtered : {false, true}) {
      QuerySpec query = MakeQuery(num_sums, filtered, 300);
      auto expected = ExecuteQueryNaive(table, query);
      ASSERT_TRUE(expected.ok());
      auto got = test::ExecuteChecked(table, query);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameResults(got.value(), expected.value(),
                        "sums=" + std::to_string(num_sums) +
                            " filtered=" + std::to_string(filtered));
    }
  }
}

TEST(ScanTest, HashAggBaselineMatchesOracle) {
  Table table = MakeMixedTable(15000, 4096, 99);
  QuerySpec query = MakeQuery(3, true, 500);
  auto expected = ExecuteQueryNaive(table, query);
  ASSERT_TRUE(expected.ok());
  auto got = ExecuteQueryHashAgg(table, query);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameResults(got.value(), expected.value(), "hash-agg");
}

TEST(ScanTest, ExpressionAggregates) {
  Table table = MakeMixedTable(8000, 4096, 111);
  const int narrow = table.FindColumn("narrow");
  const int medium = table.FindColumn("medium");
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates.push_back(AggregateSpec::Count());
  query.aggregates.push_back(AggregateSpec::SumExpr(
      Expr::Mul(Expr::Column(narrow),
                Expr::Sub(Expr::Constant(100), Expr::Column(medium)))));
  query.filters.emplace_back("filter_col", CompareOp::kGe, 100);
  auto expected = ExecuteQueryNaive(table, query);
  ASSERT_TRUE(expected.ok());
  for (auto sel : {SelectionStrategy::kGather, SelectionStrategy::kCompact,
                   SelectionStrategy::kSpecialGroup}) {
    for (auto agg :
         {AggregationStrategy::kScalar, AggregationStrategy::kSortBased,
          AggregationStrategy::kMultiAggregate}) {
      ScanOptions options;
      options.overrides.selection = sel;
      options.overrides.aggregation = agg;
      auto got = test::ExecuteChecked(table, query, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSameResults(got.value(), expected.value(),
                        std::string("expr ") + SelectionStrategyName(sel) +
                            "+" + AggregationStrategyName(agg));
    }
  }
}

TEST(ScanTest, MultiSegmentMerging) {
  // Small segments force per-segment dictionaries with different id
  // assignments; the merge must be by value.
  Table table = MakeMixedTable(9000, 1024, 123);
  EXPECT_GT(table.num_segments(), 8u);
  QuerySpec query = MakeQuery(2, true, 700);
  auto expected = ExecuteQueryNaive(table, query);
  auto got = test::ExecuteChecked(table, query);
  ASSERT_TRUE(got.ok());
  ExpectSameResults(got.value(), expected.value(), "multi-segment");
}

TEST(ScanTest, DeletedRowsAreExcluded) {
  Table table = MakeMixedTable(5000, 4096, 321);
  Rng rng(5);
  for (int d = 0; d < 500; ++d) {
    const size_t seg = rng.NextBounded(table.num_segments());
    table.mutable_segment(seg).DeleteRow(
        rng.NextBounded(table.segment(seg).num_rows()));
  }
  QuerySpec query = MakeQuery(2, true, 800);
  auto expected = ExecuteQueryNaive(table, query);
  auto got = test::ExecuteChecked(table, query);
  ASSERT_TRUE(got.ok());
  ExpectSameResults(got.value(), expected.value(), "deleted-rows");
}

TEST(ScanTest, SegmentEliminationSkipsSegments) {
  // filter_col spans [0, 999] in every segment; an impossible filter
  // eliminates all segments via metadata.
  Table table = MakeMixedTable(8000, 2048, 55);
  QuerySpec query = MakeQuery(1, true, -5);
  BIPieScan scan(table, query);
  auto got = scan.Execute();
  ASSERT_TRUE(got.ok());
  BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
  EXPECT_TRUE(got.value().rows.empty());
  EXPECT_EQ(scan.stats().segments_scanned, 0u);
  EXPECT_EQ(scan.stats().segments_eliminated, table.num_segments());
}

TEST(ScanTest, GroupByTwoColumns) {
  Table table({{"a", ColumnType::kString},
               {"b", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  Rng rng(9);
  const char* as[3] = {"p", "q", "r"};
  for (int i = 0; i < 12000; ++i) {
    app.AppendRow({0, rng.NextInRange(10, 13), rng.NextInRange(0, 99)},
                  {as[rng.NextBounded(3)], "", ""});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"a", "b"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("x")};
  auto expected = ExecuteQueryNaive(table, query);
  auto got = test::ExecuteChecked(table, query);
  ASSERT_TRUE(got.ok());
  ExpectSameResults(got.value(), expected.value(), "two-col-groupby");
  EXPECT_EQ(got.value().rows.size(), 12u);  // 3 x 4 groups all populated
}

TEST(ScanTest, NoGroupByProducesSingleRow) {
  Table table = MakeMixedTable(3000, 4096, 42);
  QuerySpec query;
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("narrow")};
  auto got = test::ExecuteChecked(table, query);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got.value().rows.size(), 1u);
  EXPECT_EQ(got.value().rows[0].count, 3000u);
  auto expected = ExecuteQueryNaive(table, query);
  ExpectSameResults(got.value(), expected.value(), "no-group-by");
}

TEST(ScanTest, AvgAggregates) {
  Table table = MakeMixedTable(4000, 4096, 61);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("narrow"),
                      AggregateSpec::Avg("narrow"),
                      AggregateSpec::Avg("medium")};
  auto got = test::ExecuteChecked(table, query);
  ASSERT_TRUE(got.ok());
  const QueryResult& r = got.value();
  for (size_t row = 0; row < r.rows.size(); ++row) {
    // Avg slots carry the raw sum; sum(narrow) and avg(narrow) share it.
    EXPECT_EQ(r.rows[row].sums[1], r.rows[row].sums[2]);
    EXPECT_NEAR(r.Avg(row, 2),
                static_cast<double>(r.rows[row].sums[1]) /
                    static_cast<double>(r.rows[row].count),
                1e-12);
  }
}

TEST(ScanTest, OverflowRiskRoutesToCheckedScalar) {
  // Values large enough that max_abs * rows overflows int64.
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"huge", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  Rng rng(7);
  const int64_t kHuge = int64_t{1} << 53;
  for (int i = 0; i < 2000; ++i) {
    app.AppendRow({static_cast<int64_t>(rng.NextBounded(3)),
                   kHuge + rng.NextInRange(0, 1000)});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Sum("huge")};
  BIPieScan scan(table, query);
  auto got = scan.Execute();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
  EXPECT_GT(scan.stats().aggregation_segments[static_cast<int>(
                AggregationStrategy::kCheckedScalar)],
            0u);
  auto expected = ExecuteQueryNaive(table, query);
  ExpectSameResults(got.value(), expected.value(), "checked-scalar");
}

TEST(ScanTest, ActualOverflowIsReportedNotWrapped) {
  Table table({{"huge", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  const int64_t kHuge = int64_t{1} << 62;
  for (int i = 0; i < 8; ++i) app.AppendRow({kHuge});
  app.Flush();
  QuerySpec query;
  query.aggregates = {AggregateSpec::Sum("huge")};
  auto got = test::ExecuteChecked(table, query);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kOverflowRisk);
}

TEST(ScanTest, DeltaEncodedAggregateAndFilterColumns) {
  // Delta columns route through the logical (expression) path; aggregation
  // and filtering over them must match the oracle for every strategy.
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"ts", ColumnType::kInt64, EncodingChoice::kDelta},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  Rng rng(505);
  int64_t ts = 5000000;
  for (int i = 0; i < 15000; ++i) {
    ts += rng.NextInRange(0, 9);
    app.AppendRow({static_cast<int64_t>(rng.NextBounded(5)), ts,
                   rng.NextInRange(0, 999)});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("ts"),
                      AggregateSpec::Min("ts"), AggregateSpec::Sum("x")};
  query.filters.emplace_back("ts", CompareOp::kLt, ts - 10000);
  auto expected = ExecuteQueryNaive(table, query);
  ASSERT_TRUE(expected.ok());
  for (auto agg :
       {AggregationStrategy::kScalar, AggregationStrategy::kSortBased,
        AggregationStrategy::kMultiAggregate}) {
    ScanOptions options;
    options.overrides.aggregation = agg;
    auto got = test::ExecuteChecked(table, query, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameResults(got.value(), expected.value(),
                      std::string("delta+") + AggregationStrategyName(agg));
  }
  // Adaptive run and delta-as-group-column fallback.
  auto adaptive = test::ExecuteChecked(table, query);
  ASSERT_TRUE(adaptive.ok());
  ExpectSameResults(adaptive.value(), expected.value(), "delta adaptive");

  QuerySpec by_delta;
  by_delta.group_by = {"ts"};
  by_delta.aggregates = {AggregateSpec::Count()};
  BIPieScan scan(table, by_delta);
  auto fallback = scan.Execute();
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  BIPIE_EXPECT_STATS_INVARIANTS(scan, by_delta, table, &fallback.value());
  EXPECT_TRUE(scan.stats().used_hash_fallback);
}

TEST(ScanTest, ParallelScanMatchesSequential) {
  Table table = MakeMixedTable(20000, 1024, 404);  // ~20 segments
  QuerySpec query = MakeQuery(3, true, 600);
  query.aggregates.push_back(AggregateSpec::Min("wide"));
  query.aggregates.push_back(AggregateSpec::Max("negative"));
  auto sequential = test::ExecuteChecked(table, query);
  ASSERT_TRUE(sequential.ok());
  for (size_t threads : {2u, 4u, 8u}) {
    ScanOptions options;
    options.num_threads = threads;
    BIPieScan scan(table, query, options);
    auto parallel = scan.Execute();
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &parallel.value());
    ExpectSameResults(parallel.value(), sequential.value(),
                      "threads=" + std::to_string(threads));
    // Aggregate stats must still add up.
    EXPECT_EQ(scan.stats().rows_scanned, table.num_rows());
    EXPECT_EQ(scan.stats().segments_scanned, table.num_segments());
  }
}

TEST(ScanTest, ParallelScanPropagatesErrors) {
  Table table = MakeMixedTable(8000, 1024, 405);
  QuerySpec query = MakeQuery(1, false, 0);
  ScanOptions options;
  options.num_threads = 4;
  // Force an infeasible strategy: in-register cannot take 28-bit + sort
  // needs sums... use in-register with an expression aggregate.
  query.aggregates.push_back(AggregateSpec::SumExpr(
      Expr::Mul(Expr::Column(1), Expr::Column(2))));
  options.overrides.aggregation = AggregationStrategy::kInRegister;
  auto result = test::ExecuteChecked(table, query, options);
  EXPECT_EQ(result.status().code(), StatusCode::kNotSupported);
}

TEST(ScanTest, OversizedGroupCardinalityFallsBackToHashEngine) {
  // > 255 combined groups exceeds the BIPie envelope (§2.2); the scan must
  // still answer via the generic engine.
  Table table({{"g1", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"g2", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  Rng rng(31);
  for (int i = 0; i < 8000; ++i) {
    app.AppendRow({rng.NextInRange(0, 39), rng.NextInRange(0, 19),
                   rng.NextInRange(0, 99)});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g1", "g2"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("x")};
  BIPieScan scan(table, query);
  auto got = scan.Execute();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
  EXPECT_TRUE(scan.stats().used_hash_fallback);
  auto expected = ExecuteQueryNaive(table, query);
  ExpectSameResults(got.value(), expected.value(), "fallback");

  // Forced strategies must NOT silently fall back.
  ScanOptions options;
  options.overrides.aggregation = AggregationStrategy::kMultiAggregate;
  EXPECT_EQ(test::ExecuteChecked(table, query, options).status().code(),
            StatusCode::kNotSupported);
}

TEST(ScanTest, EmptyTable) {
  Table table({{"g", ColumnType::kString},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count()};
  auto got = test::ExecuteChecked(table, query);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().rows.empty());
}

TEST(ScanTest, UnknownColumnsAreErrors) {
  Table table = MakeMixedTable(100, 4096, 1);
  QuerySpec query;
  query.group_by = {"missing"};
  query.aggregates = {AggregateSpec::Count()};
  EXPECT_EQ(test::ExecuteChecked(table, query).status().code(),
            StatusCode::kInvalidArgument);

  QuerySpec query2;
  query2.group_by = {"g"};
  query2.aggregates = {AggregateSpec::Sum("missing")};
  EXPECT_EQ(test::ExecuteChecked(table, query2).status().code(),
            StatusCode::kInvalidArgument);

  QuerySpec query3;
  query3.group_by = {"g"};
  query3.aggregates = {AggregateSpec::Count()};
  query3.filters.emplace_back("missing", CompareOp::kEq, int64_t{1});
  EXPECT_EQ(test::ExecuteChecked(table, query3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ScanTest, AllRowsFilteredOut) {
  Table table = MakeMixedTable(5000, 4096, 17);
  QuerySpec query = MakeQuery(2, true, 0);  // filter_col < 0: nothing
  ScanOptions options;
  options.enable_segment_elimination = false;  // force the scan to run
  auto got = test::ExecuteChecked(table, query, options);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got.value().rows.empty());
}

TEST(ScanTest, ConjunctiveFilters) {
  Table table = MakeMixedTable(10000, 4096, 202);
  QuerySpec query = MakeQuery(2, true, 900);
  query.filters.emplace_back("filter_col", CompareOp::kGe, 200);
  auto expected = ExecuteQueryNaive(table, query);
  auto got = test::ExecuteChecked(table, query);
  ASSERT_TRUE(got.ok());
  ExpectSameResults(got.value(), expected.value(), "conjunction");
}

}  // namespace
}  // namespace bipie
