#include "core/group_mapper.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "storage/table.h"

namespace bipie {
namespace {

Table MakeTable(size_t rows, uint64_t seed) {
  Table table({{"flag", ColumnType::kString},
               {"status", ColumnType::kString},
               {"small_int", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"wide", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"runs", ColumnType::kInt64, EncodingChoice::kRle}});
  TableAppender app(&table, rows);
  Rng rng(seed);
  const char* flags[3] = {"A", "N", "R"};
  const char* statuses[2] = {"F", "O"};
  for (size_t i = 0; i < rows; ++i) {
    std::vector<int64_t> ints(5, 0);
    std::vector<std::string> strings(5);
    strings[0] = flags[rng.NextBounded(3)];
    strings[1] = statuses[rng.NextBounded(2)];
    ints[2] = 1000 + static_cast<int64_t>(rng.NextBounded(4)) * 7;
    ints[3] = rng.NextInRange(-100, 100);
    ints[4] = static_cast<int64_t>(i / 100);
    app.AppendRow(ints, strings);
  }
  app.Flush();
  return table;
}

TEST(GroupMapperTest, NoGroupColumnsMapsToGroupZero) {
  Table table = MakeTable(100, 1);
  GroupMapper mapper;
  ASSERT_TRUE(mapper.Bind(table.segment(0), {}).ok());
  EXPECT_EQ(mapper.num_groups(), 1);
  std::vector<uint8_t> out(100 + 32);
  mapper.MapBatch(0, 100, out.data());
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(out[i], 0);
}

TEST(GroupMapperTest, SingleStringColumn) {
  Table table = MakeTable(500, 2);
  const Segment& seg = table.segment(0);
  GroupMapper mapper;
  ASSERT_TRUE(mapper.Bind(seg, {0}).ok());
  EXPECT_EQ(mapper.num_groups(), 3);
  std::vector<uint8_t> ids(500 + 32);
  mapper.MapBatch(0, 500, ids.data());
  // Cross-check against decoded ids.
  std::vector<int64_t> decoded(500);
  seg.column(0).DecodeInt64(0, 500, decoded.data());
  for (size_t i = 0; i < 500; ++i) {
    ASSERT_EQ(ids[i], decoded[i]);
  }
  // ValueOf must invert.
  for (int g = 0; g < 3; ++g) {
    const GroupValue v = mapper.ValueOf(g, 0);
    EXPECT_TRUE(v.is_string);
    EXPECT_EQ(seg.column(0).string_dictionary()->Find(v.string_value), g);
  }
}

TEST(GroupMapperTest, TwoColumnCombination) {
  Table table = MakeTable(2000, 3);
  const Segment& seg = table.segment(0);
  GroupMapper mapper;
  ASSERT_TRUE(mapper.Bind(seg, {0, 1}).ok());
  EXPECT_EQ(mapper.num_groups(), 6);  // 3 flags x 2 statuses
  std::vector<uint8_t> ids(2000 + 32);
  mapper.MapBatch(0, 2000, ids.data());
  std::vector<int64_t> flag(2000), status(2000);
  seg.column(0).DecodeInt64(0, 2000, flag.data());
  seg.column(1).DecodeInt64(0, 2000, status.data());
  for (size_t i = 0; i < 2000; ++i) {
    ASSERT_EQ(ids[i], flag[i] * 2 + status[i]);
  }
  // Round trip through ValueOf.
  for (int g = 0; g < 6; ++g) {
    const GroupValue f = mapper.ValueOf(g, 0);
    const GroupValue s = mapper.ValueOf(g, 1);
    const int64_t fid = seg.column(0).string_dictionary()->Find(f.string_value);
    const int64_t sid =
        seg.column(1).string_dictionary()->Find(s.string_value);
    EXPECT_EQ(fid * 2 + sid, g);
  }
}

TEST(GroupMapperTest, IntDictionaryValueOf) {
  Table table = MakeTable(300, 4);
  const Segment& seg = table.segment(0);
  GroupMapper mapper;
  ASSERT_TRUE(mapper.Bind(seg, {2}).ok());
  EXPECT_EQ(mapper.num_groups(), 4);
  for (int g = 0; g < 4; ++g) {
    const GroupValue v = mapper.ValueOf(g, 0);
    EXPECT_FALSE(v.is_string);
    EXPECT_EQ(seg.column(2).int_dictionary()->Find(v.int_value), g);
  }
}

TEST(GroupMapperTest, BitPackedGroupColumnUsesOffsets) {
  Table table = MakeTable(300, 5);
  const Segment& seg = table.segment(0);
  GroupMapper mapper;
  ASSERT_TRUE(mapper.Bind(seg, {3}).ok());  // values -100..100 -> 201 ids
  EXPECT_EQ(mapper.num_groups(), 201);
  const GroupValue v = mapper.ValueOf(0, 0);
  EXPECT_EQ(v.int_value, seg.column(3).meta().min);
}

TEST(GroupMapperTest, RleGroupColumnGetsRunIds) {
  Table table = MakeTable(300, 6);
  const Segment& seg = table.segment(0);
  ASSERT_EQ(seg.column(4).encoding(), Encoding::kRle);
  GroupMapper mapper;
  ASSERT_TRUE(mapper.Bind(seg, {4}).ok());
  // Values are i / 100 over 300 rows -> 3 distinct run values.
  EXPECT_EQ(mapper.num_groups(), 3);
  std::vector<uint8_t> ids(300 + 32);
  mapper.MapBatch(0, 300, ids.data());
  std::vector<int64_t> decoded(300);
  seg.column(4).DecodeInt64(0, 300, decoded.data());
  for (size_t i = 0; i < 300; ++i) {
    ASSERT_EQ(mapper.ValueOf(ids[i], 0).int_value, decoded[i]) << i;
  }
  // Windowed materialization matches too.
  std::vector<uint8_t> window(100 + 32);
  mapper.MapBatch(150, 100, window.data());
  for (size_t i = 0; i < 100; ++i) ASSERT_EQ(window[i], ids[150 + i]);
  // Selected (gather) materialization agrees with the full map.
  std::vector<uint32_t> indices = {0, 3, 99, 100, 101, 240, 299};
  std::vector<uint8_t> selected(indices.size() + 32);
  mapper.MapSelected(0, indices.data(), indices.size(), selected.data());
  for (size_t i = 0; i < indices.size(); ++i) {
    ASSERT_EQ(selected[i], ids[indices[i]]);
  }
}

TEST(GroupMapperTest, RejectsOversizedCardinality) {
  Table table = MakeTable(300, 6);
  const Segment& seg = table.segment(0);
  GroupMapper mapper;
  // 201 * 6 > 255 -> combined cardinality overflow.
  EXPECT_EQ(mapper.Bind(seg, {3, 0}).code(), StatusCode::kNotSupported);
  // Three columns unsupported.
  EXPECT_EQ(mapper.Bind(seg, {0, 1, 2}).code(), StatusCode::kNotSupported);
  // RLE column with too many distinct run values.
  Table wide({{"r", ColumnType::kInt64, EncodingChoice::kRle}});
  TableAppender app(&wide, 4096);
  for (int i = 0; i < 2000; ++i) app.AppendRow({i});  // 2000 distinct runs
  app.Flush();
  GroupMapper wide_mapper;
  EXPECT_EQ(wide_mapper.Bind(wide.segment(0), {0}).code(),
            StatusCode::kNotSupported);
}

TEST(GroupMapperTest, MapSelectedMatchesMapBatch) {
  Table table = MakeTable(4096 * 2, 7);
  const Segment& seg = table.segment(0);
  GroupMapper mapper;
  ASSERT_TRUE(mapper.Bind(seg, {0, 1}).ok());
  // Batch window starting at 4096 with a sparse selection.
  std::vector<uint32_t> indices;
  for (uint32_t i = 0; i < 4096; i += 7) indices.push_back(i);
  std::vector<uint8_t> selected(indices.size() + 32);
  mapper.MapSelected(4096, indices.data(), indices.size(), selected.data());
  std::vector<uint8_t> all(4096 + 32);
  mapper.MapBatch(4096, 4096, all.data());
  for (size_t i = 0; i < indices.size(); ++i) {
    ASSERT_EQ(selected[i], all[indices[i]]) << i;
  }
}

}  // namespace
}  // namespace bipie
