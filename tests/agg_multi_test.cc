#include "vector/agg_multi.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"

namespace bipie {
namespace {

// A test harness holding decoded input arrays of mixed widths.
struct MultiAggFixture {
  std::vector<uint8_t> groups;
  std::vector<AlignedBuffer> arrays;
  std::vector<const void*> ptrs;
  std::vector<MultiAggregator::ColumnDesc> descs;
  int num_groups;

  // widths[c]: 4 => uint32 (< 2^16), 8 => int64 (signed).
  MultiAggFixture(size_t n, int num_groups_in, std::vector<int> widths,
                  uint64_t seed)
      : num_groups(num_groups_in) {
    Rng rng(seed);
    groups.resize(n);
    for (auto& g : groups) {
      g = static_cast<uint8_t>(rng.NextBounded(num_groups));
    }
    for (int w : widths) {
      AlignedBuffer buf(n * w);
      if (w == 4) {
        for (size_t i = 0; i < n; ++i) {
          buf.data_as<uint32_t>()[i] =
              static_cast<uint32_t>(rng.NextBounded(1 << 16));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          buf.data_as<int64_t>()[i] = rng.NextInRange(-1000000, 1000000);
        }
      }
      arrays.push_back(std::move(buf));
      descs.push_back({w});
    }
    for (auto& a : arrays) ptrs.push_back(a.data());
  }

  std::vector<int64_t> ReferenceSums() const {
    std::vector<int64_t> sums(num_groups * descs.size(), 0);
    for (size_t i = 0; i < groups.size(); ++i) {
      for (size_t c = 0; c < descs.size(); ++c) {
        const int64_t v =
            descs[c].input_bytes == 8
                ? arrays[c].data_as<int64_t>()[i]
                : static_cast<int64_t>(arrays[c].data_as<uint32_t>()[i]);
        sums[groups[i] * descs.size() + c] += v;
      }
    }
    return sums;
  }
};

// The size combinations of the paper's Table 4, mapped to expanded widths
// (1-2 byte inputs -> 4-byte arrays, 4-8 byte inputs -> 8-byte arrays).
class MultiAggLayouts
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(MultiAggLayouts, MatchesReference) {
  MultiAggFixture f(5003, 32, GetParam(), 17);
  test::ForEachIsaTier([&](IsaTier tier) {
    MultiAggregator agg;
    ASSERT_TRUE(agg.Configure(f.descs, f.num_groups).ok());
    agg.Process(f.groups.data(), f.ptrs.data(), f.groups.size());
    std::vector<int64_t> sums(f.num_groups * f.descs.size(), 0);
    agg.Flush(sums.data());
    ASSERT_EQ(sums, f.ReferenceSums()) << "tier=" << IsaTierName(tier);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Table4Layouts, MultiAggLayouts,
    ::testing::Values(std::vector<int>{8, 4},           // 8-2
                      std::vector<int>{8, 8, 4},        // 8-4-1
                      std::vector<int>{8, 8, 8, 4},     // 8-8-4-2
                      std::vector<int>{8, 8, 8, 4, 4},  // 8-4-4-2-2
                      std::vector<int>{8, 8, 4, 4, 4},  // 4-4-2-2-2
                      std::vector<int>{8},              // single 64-bit
                      std::vector<int>{4},              // single 32-bit
                      std::vector<int>{4, 4},
                      std::vector<int>{4, 4, 4},
                      std::vector<int>{4, 4, 4, 4, 4, 4, 4},  // 7 narrow
                      std::vector<int>{8, 8, 8, 8}));

TEST(MultiAggregatorTest, RejectsOversizedRow) {
  MultiAggregator agg;
  // Five 64-bit slots do not fit a 256-bit register.
  std::vector<MultiAggregator::ColumnDesc> cols(5, {8});
  EXPECT_EQ(agg.Configure(cols, 8).code(), StatusCode::kNotSupported);
}

TEST(MultiAggregatorTest, RejectsEmptyColumnsAndBadGroups) {
  MultiAggregator agg;
  EXPECT_FALSE(agg.Configure({}, 8).ok());
  EXPECT_FALSE(agg.Configure({{8}}, 0).ok());
  EXPECT_FALSE(agg.Configure({{8}}, 257).ok());
  EXPECT_FALSE(agg.Configure({{3}}, 8).ok());
}

TEST(MultiAggregatorTest, PackedRowBytesReflectsPairing) {
  MultiAggregator agg;
  ASSERT_TRUE(agg.Configure({{8}, {4}, {4}, {4}}, 4).ok());
  // One qword slot + two pairs (one padded) = 24 bytes.
  EXPECT_EQ(agg.packed_row_bytes(), 24);
}

TEST(MultiAggregatorTest, DrainCadenceSurvivesLongStreams) {
  // > 65536 rows with maximal narrow values: the 32-bit lanes must drain
  // before wrapping.
  const size_t n = 70000;
  MultiAggFixture f(n, 3, {4, 4}, 23);
  for (size_t i = 0; i < n; ++i) {
    f.arrays[0].data_as<uint32_t>()[i] = 0xFFFF;
    f.arrays[1].data_as<uint32_t>()[i] = 0xFFFF;
  }
  MultiAggregator agg;
  ASSERT_TRUE(agg.Configure(f.descs, 3).ok());
  agg.Process(f.groups.data(), f.ptrs.data(), n);
  std::vector<int64_t> sums(3 * 2, 0);
  agg.Flush(sums.data());
  EXPECT_EQ(sums, f.ReferenceSums());
}

TEST(MultiAggregatorTest, MultipleProcessCallsAccumulate) {
  MultiAggFixture f(1000, 8, {8, 4}, 29);
  MultiAggregator agg;
  ASSERT_TRUE(agg.Configure(f.descs, 8).ok());
  // Feed in three unevenly sized chunks, including a misaligned split.
  const void* ptrs_mid[2];
  const void* ptrs_last[2];
  ptrs_mid[0] = f.arrays[0].data_as<int64_t>() + 333;
  ptrs_mid[1] = f.arrays[1].data_as<uint32_t>() + 333;
  ptrs_last[0] = f.arrays[0].data_as<int64_t>() + 998;
  ptrs_last[1] = f.arrays[1].data_as<uint32_t>() + 998;
  agg.Process(f.groups.data(), f.ptrs.data(), 333);
  agg.Process(f.groups.data() + 333, ptrs_mid, 665);
  agg.Process(f.groups.data() + 998, ptrs_last, 2);
  std::vector<int64_t> sums(8 * 2, 0);
  agg.Flush(sums.data());
  EXPECT_EQ(sums, f.ReferenceSums());
}

TEST(MultiAggregatorTest, FlushResetsState) {
  MultiAggFixture f(500, 4, {8}, 31);
  MultiAggregator agg;
  ASSERT_TRUE(agg.Configure(f.descs, 4).ok());
  agg.Process(f.groups.data(), f.ptrs.data(), 500);
  std::vector<int64_t> first(4, 0), second(4, 0);
  agg.Flush(first.data());
  agg.Flush(second.data());
  EXPECT_EQ(first, f.ReferenceSums());
  EXPECT_EQ(second, std::vector<int64_t>(4, 0));
}

TEST(MultiAggregatorTest, MaxGroups256) {
  MultiAggFixture f(10000, 256, {8, 4}, 37);
  MultiAggregator agg;
  ASSERT_TRUE(agg.Configure(f.descs, 256).ok());
  agg.Process(f.groups.data(), f.ptrs.data(), f.groups.size());
  std::vector<int64_t> sums(256 * 2, 0);
  agg.Flush(sums.data());
  EXPECT_EQ(sums, f.ReferenceSums());
}

}  // namespace
}  // namespace bipie
