#include "sql/parser.h"

#include <gtest/gtest.h>

#include "baseline/scalar_engine.h"
#include "common/random.h"
#include "core/scan.h"

namespace bipie {
namespace {

Table MakeTable() {
  Table table({{"city", ColumnType::kString},
               {"amount", ColumnType::kInt64},
               {"qty", ColumnType::kInt64},
               {"tax", ColumnType::kInt64}});
  TableAppender app(&table, 4096);
  Rng rng(404);
  const char* cities[3] = {"hou", "sea", "bos"};
  for (int i = 0; i < 6000; ++i) {
    app.AppendRow({0, rng.NextInRange(1, 1000), rng.NextInRange(1, 50),
                   rng.NextInRange(0, 8)},
                  {cities[rng.NextBounded(3)], "", "", ""});
  }
  app.Flush();
  return table;
}

TEST(SqlParserTest, BasicShape) {
  Table t = MakeTable();
  auto parsed = ParseQuery(
      "SELECT city, count(*), sum(amount) FROM sales "
      "WHERE amount < 500 GROUP BY city",
      t);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const QuerySpec& q = parsed.value().spec;
  EXPECT_EQ(parsed.value().table_name, "sales");
  EXPECT_EQ(q.group_by, std::vector<std::string>{"city"});
  ASSERT_EQ(q.aggregates.size(), 2u);
  EXPECT_EQ(q.aggregates[0].kind, AggregateSpec::Kind::kCount);
  EXPECT_EQ(q.aggregates[1].kind, AggregateSpec::Kind::kSum);
  EXPECT_EQ(q.aggregates[1].column, "amount");
  ASSERT_EQ(q.filters.size(), 1u);
  EXPECT_EQ(q.filters[0].op(), CompareOp::kLt);
  EXPECT_EQ(q.filters[0].literal(), 500);
}

TEST(SqlParserTest, AllAggregateKinds) {
  Table t = MakeTable();
  auto parsed = ParseQuery(
      "select count(*), sum(qty), avg(amount), min(tax), max(tax) "
      "from x",
      t);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& aggs = parsed.value().spec.aggregates;
  ASSERT_EQ(aggs.size(), 5u);
  EXPECT_EQ(aggs[1].kind, AggregateSpec::Kind::kSum);
  EXPECT_EQ(aggs[2].kind, AggregateSpec::Kind::kAvg);
  EXPECT_EQ(aggs[3].kind, AggregateSpec::Kind::kMin);
  EXPECT_EQ(aggs[4].kind, AggregateSpec::Kind::kMax);
}

TEST(SqlParserTest, SumExpressionWithPrecedence) {
  Table t = MakeTable();
  auto parsed = ParseQuery(
      "SELECT sum(amount * (100 - tax) + qty) FROM x", t);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& agg = parsed.value().spec.aggregates[0];
  ASSERT_EQ(agg.kind, AggregateSpec::Kind::kSumExpr);
  // Evaluate the parsed tree on a tiny batch to confirm structure:
  // amount=10, tax=4, qty=7 -> 10*96 + 7 = 967.
  const int64_t amount = 10, qty = 7, tax = 4, city = 0;
  const int64_t* cols[4] = {&city, &amount, &qty, &tax};
  int64_t out = 0;
  agg.expr->Evaluate(cols, 1, &out);
  EXPECT_EQ(out, 967);
}

TEST(SqlParserTest, UnaryMinusAndNegativeLiterals) {
  Table t = MakeTable();
  auto parsed = ParseQuery(
      "SELECT sum(-qty * 2) FROM x WHERE amount > -5", t);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().spec.filters[0].literal(), -5);
  const int64_t qty = 3, zero = 0;
  const int64_t* cols[4] = {&zero, &zero, &qty, &zero};
  int64_t out = 0;
  parsed.value().spec.aggregates[0].expr->Evaluate(cols, 1, &out);
  EXPECT_EQ(out, -6);
}

TEST(SqlParserTest, StringPredicate) {
  Table t = MakeTable();
  auto parsed = ParseQuery(
      "SELECT count(*) FROM x WHERE city = 'sea'", t);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto result = ExecuteQuery(t, parsed.value().spec);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_GT(result.value().rows[0].count, 1500u);
  EXPECT_LT(result.value().rows[0].count, 2500u);
}

TEST(SqlParserTest, ConjunctionAndAllOperators) {
  Table t = MakeTable();
  for (const char* op : {"=", "<>", "!=", "<", "<=", ">", ">="}) {
    auto parsed = ParseQuery(
        std::string("SELECT count(*) FROM x WHERE amount ") + op +
            " 100 AND qty >= 10",
        t);
    ASSERT_TRUE(parsed.ok()) << op << ": " << parsed.status().ToString();
    EXPECT_EQ(parsed.value().spec.filters.size(), 2u);
  }
}

TEST(SqlParserTest, ParsedQueryExecutesCorrectly) {
  Table t = MakeTable();
  auto parsed = ParseQuery(
      "SELECT city, count(*), sum(amount * qty), min(amount), max(amount) "
      "FROM sales WHERE tax <= 4 GROUP BY city",
      t);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto via_sql = ExecuteQuery(t, parsed.value().spec);
  ASSERT_TRUE(via_sql.ok());
  auto oracle = ExecuteQueryNaive(t, parsed.value().spec);
  ASSERT_TRUE(oracle.ok());
  ASSERT_EQ(via_sql.value().rows.size(), oracle.value().rows.size());
  for (size_t r = 0; r < via_sql.value().rows.size(); ++r) {
    EXPECT_EQ(via_sql.value().rows[r].sums, oracle.value().rows[r].sums);
  }
}

TEST(SqlParserTest, CaseInsensitiveKeywordsCaseSensitiveColumns) {
  Table t = MakeTable();
  EXPECT_TRUE(
      ParseQuery("SeLeCt CoUnT(*) FrOm x WhErE amount < 5", t).ok());
  EXPECT_FALSE(ParseQuery("SELECT count(*) FROM x WHERE AMOUNT < 5", t).ok());
}

TEST(SqlParserTest, Rejections) {
  Table t = MakeTable();
  // Ungrouped bare column.
  EXPECT_FALSE(ParseQuery("SELECT city, count(*) FROM x", t).ok());
  // Unknown column.
  EXPECT_FALSE(ParseQuery("SELECT count(*) FROM x WHERE nope = 1", t).ok());
  // Missing FROM.
  EXPECT_FALSE(ParseQuery("SELECT count(*)", t).ok());
  // No aggregate.
  EXPECT_FALSE(ParseQuery("SELECT city FROM x GROUP BY city", t).ok());
  // Garbage trailing input.
  EXPECT_FALSE(ParseQuery("SELECT count(*) FROM x LIMIT 5", t).ok());
  // Unterminated string.
  EXPECT_FALSE(ParseQuery("SELECT count(*) FROM x WHERE city = 'a", t).ok());
  // Unsupported operator.
  EXPECT_FALSE(ParseQuery("SELECT count(*) FROM x WHERE qty % 2", t).ok());
  // min() of an expression is not supported.
  EXPECT_FALSE(ParseQuery("SELECT min(qty * 2) FROM x", t).ok());
}

TEST(SqlParserTest, BetweenPredicate) {
  Table t = MakeTable();
  auto parsed = ParseQuery(
      "SELECT count(*) FROM x WHERE amount BETWEEN 100 AND 200 "
      "AND tax between -1 and 4",
      t);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().spec.filters.size(), 2u);
  EXPECT_EQ(parsed.value().spec.filters[0].op(), CompareOp::kBetween);
  EXPECT_EQ(parsed.value().spec.filters[0].literal(), 100);
  EXPECT_EQ(parsed.value().spec.filters[0].literal2(), 200);
  EXPECT_EQ(parsed.value().spec.filters[1].literal(), -1);
  auto result = ExecuteQuery(t, parsed.value().spec);
  ASSERT_TRUE(result.ok());
  auto oracle = ExecuteQueryNaive(t, parsed.value().spec);
  ASSERT_EQ(result.value().rows[0].count, oracle.value().rows[0].count);

  // BETWEEN with a missing AND is a clean error.
  EXPECT_FALSE(
      ParseQuery("SELECT count(*) FROM x WHERE amount BETWEEN 1 2", t).ok());
}

TEST(SqlParserTest, FuzzedInputsNeverCrash) {
  // Random token soup must produce clean errors (or occasionally parse),
  // never crash or hang.
  Table t = MakeTable();
  const char* vocab[] = {"SELECT", "FROM",  "WHERE", "GROUP",  "BY",
                         "AND",    "count", "sum",   "min",    "(",
                         ")",      "*",     ",",     "+",      "-",
                         "<",      ">=",    "=",     "city",   "amount",
                         "qty",    "42",    "'x'",   "nope",   "<>"};
  Rng rng(2024);
  for (int iter = 0; iter < 500; ++iter) {
    std::string sql;
    const int len = 1 + static_cast<int>(rng.NextBounded(20));
    for (int i = 0; i < len; ++i) {
      sql += vocab[rng.NextBounded(sizeof(vocab) / sizeof(vocab[0]))];
      sql += " ";
    }
    auto parsed = ParseQuery(sql, t);  // must return, not crash
    if (parsed.ok()) {
      // Anything that parses must also execute or fail cleanly.
      auto result = ExecuteQuery(t, parsed.value().spec);
      (void)result;
    }
  }
}

TEST(SqlParserTest, SumOfPlainColumnStaysRawColumnSum) {
  // sum(col) must compile to the raw-column fast path, not an expression.
  Table t = MakeTable();
  auto parsed = ParseQuery("SELECT sum(qty) FROM x", t);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().spec.aggregates[0].kind,
            AggregateSpec::Kind::kSum);
  EXPECT_EQ(parsed.value().spec.aggregates[0].column, "qty");
}

}  // namespace
}  // namespace bipie
