// Memory governance end to end (DESIGN.md §13): per-query and process-wide
// limits driven through every allocation path — specialized scan, pooled
// morsel execution, run-level pipeline, the generic hash-aggregation
// fallback, and table IO. Overcommit must surface as kResourceExhausted
// (complete-or-error, never a crash, never a partial result) and every
// failed query must leave its tracker balanced at zero — ExecuteChecked
// asserts that balance on every run below.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/hash_agg.h"
#include "common/memory_tracker.h"
#include "common/random.h"
#include "core/scan.h"
#include "storage/table_io.h"
#include "tests/test_util.h"

namespace bipie {
namespace {

// Tight enough that one 4096-row decode buffer (32 KiB) cannot fit.
constexpr uint64_t kTinyLimit = 8 * 1024;
constexpr uint64_t kGenerousLimit = uint64_t{1} << 30;

Table MakeBitPackedTable(size_t rows, size_t segment_rows, int64_t group_card,
                         uint64_t seed) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"v", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"f", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, segment_rows);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({rng.NextInRange(0, group_card - 1),
                   rng.NextInRange(0, 999), rng.NextInRange(0, 99)});
  }
  app.Flush();
  return table;
}

// RLE-clustered so the scan resolves kRunBased (run-level pipeline).
Table MakeRunTable(size_t rows, size_t segment_rows) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kRle},
               {"amount", ColumnType::kInt64, EncodingChoice::kRle}});
  TableAppender app(&table, segment_rows);
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({static_cast<int64_t>((i / 10000) % 5),
                   static_cast<int64_t>((i / 6000) % 100)});
  }
  app.Flush();
  return table;
}

QuerySpec MakeQuery(bool with_filter) {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("v")};
  if (with_filter) {
    query.filters.emplace_back("f", CompareOp::kLt, int64_t{50});
  }
  return query;
}

void ConfigureLimit(QueryContext* context, uint64_t limit_bytes) {
  ASSERT_TRUE(context->settings()
                  .SetUInt64("memory_limit_bytes", limit_bytes)
                  .ok());
  context->ApplySettings();
}

TEST(MemoryLimitTest, ScanUnderTinyLimitReturnsResourceExhausted) {
  Table table = MakeBitPackedTable(20000, 4096, 8, 1);
  QueryContext context;
  ConfigureLimit(&context, kTinyLimit);
  ScanOptions options;
  options.context = &context;
  Result<QueryResult> got = test::ExecuteChecked(table, MakeQuery(true),
                                                 options);
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
      << got.status().ToString();
  EXPECT_EQ(context.memory_tracker().used(), 0u);
}

TEST(MemoryLimitTest, ScanUnderGenerousLimitMatchesUnlimitedRun) {
  Table table = MakeBitPackedTable(20000, 4096, 8, 2);
  const QuerySpec query = MakeQuery(true);
  Result<QueryResult> unlimited = test::ExecuteChecked(table, query);
  ASSERT_TRUE(unlimited.ok()) << unlimited.status().ToString();

  QueryContext context;
  ConfigureLimit(&context, kGenerousLimit);
  ScanOptions options;
  options.context = &context;
  Result<QueryResult> limited = test::ExecuteChecked(table, query, options);
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  ASSERT_EQ(limited.value().rows.size(), unlimited.value().rows.size());
  for (size_t r = 0; r < limited.value().rows.size(); ++r) {
    EXPECT_EQ(limited.value().rows[r].group, unlimited.value().rows[r].group);
    EXPECT_EQ(limited.value().rows[r].count, unlimited.value().rows[r].count);
    EXPECT_EQ(limited.value().rows[r].sums, unlimited.value().rows[r].sums);
  }
  EXPECT_GT(context.memory_tracker().peak(), 0u);  // work was tracked
  EXPECT_EQ(context.memory_tracker().used(), 0u);
}

TEST(MemoryLimitTest, PooledScanUnderTinyLimitFailsStructurally) {
  // The morsel pool runs the same governed path: every worker binds the
  // query tracker per morsel, and per-morsel failures reduce to one error.
  Table table = MakeBitPackedTable(60000, 4096, 8, 3);
  QueryContext context;
  ConfigureLimit(&context, kTinyLimit);
  ScanOptions options;
  options.context = &context;
  options.num_threads = 0;       // shared pool
  options.morsel_rows = 4096;    // many morsels
  Result<QueryResult> got = test::ExecuteChecked(table, MakeQuery(true),
                                                 options);
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
      << got.status().ToString();
  EXPECT_EQ(context.memory_tracker().used(), 0u);
}

TEST(MemoryLimitTest, RunPipelineUnderTinyLimitFailsStructurally) {
  Table table = MakeRunTable(50000, 50000);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount")};

  // Sanity: this shape really takes the run-based path when unconstrained.
  {
    BIPieScan scan(table, query, {});
    Result<QueryResult> got = scan.Execute();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_GT(scan.stats().runs_aggregated, 0u);
  }

  QueryContext context;
  ConfigureLimit(&context, 1024);  // below even the run-span scratch
  ScanOptions options;
  options.context = &context;
  Result<QueryResult> got = test::ExecuteChecked(table, query, options);
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
      << got.status().ToString();
  EXPECT_EQ(context.memory_tracker().used(), 0u);
}

TEST(MemoryLimitTest, HashFallbackUnderTinyLimitFailsStructurally) {
  // Group cardinality above 255 pushes the query outside the BIPie envelope
  // into the generic hash engine, which is governed by the same tracker.
  Table table = MakeBitPackedTable(20000, 4096, 1000, 4);
  const QuerySpec query = MakeQuery(false);

  QueryContext context;
  ConfigureLimit(&context, kTinyLimit);
  ScanOptions options;
  options.context = &context;
  Result<QueryResult> got = test::ExecuteChecked(table, query, options);
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
      << got.status().ToString();
  EXPECT_EQ(context.memory_tracker().used(), 0u);

  // With room to work, the fallback still runs to completion and reports
  // itself honestly.
  QueryContext roomy;
  ConfigureLimit(&roomy, kGenerousLimit);
  ScanOptions roomy_options;
  roomy_options.context = &roomy;
  BIPieScan scan(table, query, roomy_options);
  Result<QueryResult> ok = scan.Execute();
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(scan.stats().used_hash_fallback);
  EXPECT_EQ(ok.value().rows.size(), 1000u);
  EXPECT_EQ(roomy.memory_tracker().used(), 0u);
}

TEST(MemoryLimitTest, SoftLimitLatchesWithoutFailingTheQuery) {
  Table table = MakeBitPackedTable(20000, 4096, 8, 5);
  QueryContext context;
  ASSERT_TRUE(
      context.settings().SetUInt64("memory_soft_limit_bytes", 1024).ok());
  context.ApplySettings();
  ScanOptions options;
  options.context = &context;
  Result<QueryResult> got = test::ExecuteChecked(table, MakeQuery(true),
                                                 options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_TRUE(context.memory_tracker().soft_limit_exceeded());
  EXPECT_EQ(context.memory_tracker().used(), 0u);
}

TEST(MemoryLimitTest, ProcessWideLimitGovernsEveryQuery) {
  Table table = MakeBitPackedTable(20000, 4096, 8, 6);
  MemoryTracker& process = MemoryTracker::Process();
  // Leave room for what is already resident (other tests' loaded state),
  // but none for this scan's working set.
  process.set_hard_limit(process.used() + 2048);

  QueryContext context;  // no per-query limit: the root alone must stop it
  ScanOptions options;
  options.context = &context;
  Result<QueryResult> got = test::ExecuteChecked(table, MakeQuery(true),
                                                 options);
  process.set_hard_limit(0);  // restore before asserting
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
      << got.status().ToString();
  EXPECT_EQ(context.memory_tracker().used(), 0u);

  Result<QueryResult> after = test::ExecuteChecked(table, MakeQuery(true),
                                                   options);
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST(MemoryLimitTest, TableLoadIsGoverned) {
  Table table = MakeBitPackedTable(30000, 4096, 8, 7);
  const std::string path =
      std::string(::testing::TempDir()) + "/memory_limit_io.bipie";
  ASSERT_TRUE(SaveTable(table, path).ok());

  MemoryTracker limited(&MemoryTracker::Process(), "load");
  limited.set_hard_limit(kTinyLimit);
  LoadOptions options;
  options.memory_tracker = &limited;
  Result<Table> failed = LoadTable(path, options);
  EXPECT_EQ(failed.status().code(), StatusCode::kResourceExhausted)
      << failed.status().ToString();
  EXPECT_EQ(limited.used(), 0u);

  // A governed load that fits charges the tracker transiently, then
  // re-homes the finished table to the process root: the loading query's
  // account drains to zero while the bytes stay tracked.
  MemoryTracker roomy(&MemoryTracker::Process(), "load");
  roomy.set_hard_limit(kGenerousLimit);
  options.memory_tracker = &roomy;
  const size_t process_before = MemoryTracker::Process().used();
  Result<Table> loaded = LoadTable(path, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(roomy.peak(), 0u);
  EXPECT_EQ(roomy.used(), 0u);
  EXPECT_GT(MemoryTracker::Process().used(), process_before);
  EXPECT_EQ(loaded.value().num_rows(), table.num_rows());
  std::remove(path.c_str());
}

TEST(MemoryLimitTest, ByteSliceDecodeFallbackIsGoverned) {
  // A byte-sliced filter column with the plane kernels forced off takes the
  // assemble-then-compare fallback, whose decode scratch is charged to the
  // query tracker like every other scratch allocation: a tiny limit must
  // fail structurally with a balanced tracker, a generous one must match
  // the kernel path's result exactly.
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"v", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"s", ColumnType::kInt64, EncodingChoice::kByteSliced}});
  TableAppender app(&table, 4096);
  Rng rng(9);
  for (size_t i = 0; i < 20000; ++i) {
    app.AppendRow({rng.NextInRange(0, 7), rng.NextInRange(0, 999),
                   rng.NextInRange(0, (int64_t{1} << 20) - 1)});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("v")};
  query.filters.emplace_back("s", CompareOp::kLt, int64_t{1} << 17);

  QueryContext tiny;
  ConfigureLimit(&tiny, kTinyLimit);
  ScanOptions options;
  options.context = &tiny;
  options.overrides.byteslice = false;
  Result<QueryResult> got = test::ExecuteChecked(table, query, options);
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted)
      << got.status().ToString();
  EXPECT_EQ(tiny.memory_tracker().used(), 0u);

  QueryContext roomy;
  ConfigureLimit(&roomy, kGenerousLimit);
  options.context = &roomy;
  Result<QueryResult> fallback = test::ExecuteChecked(table, query, options);
  ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
  EXPECT_EQ(roomy.memory_tracker().used(), 0u);

  options.overrides.byteslice = true;  // plane kernels: no decode scratch
  options.context = nullptr;
  Result<QueryResult> kernel = test::ExecuteChecked(table, query, options);
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  ASSERT_EQ(kernel.value().rows.size(), fallback.value().rows.size());
  for (size_t r = 0; r < kernel.value().rows.size(); ++r) {
    EXPECT_EQ(kernel.value().rows[r].count, fallback.value().rows[r].count);
    EXPECT_EQ(kernel.value().rows[r].sums, fallback.value().rows[r].sums);
  }
}

TEST(MemoryLimitTest, ForcedStrategySettingsFlowThroughMakeScanOptions) {
  // MakeScanOptions maps the validated string settings onto ScanOptions;
  // combined with a limit this is the whole settings->execution path.
  Table table = MakeBitPackedTable(20000, 4096, 8, 8);
  QueryContext context;
  ASSERT_TRUE(context.settings().SetUInt64("num_threads", 1).ok());
  ASSERT_TRUE(
      context.settings().SetString("force_selection_strategy", "gather").ok());
  ASSERT_TRUE(context.settings().SetString("force_byteslice", "off").ok());
  ASSERT_TRUE(context.settings()
                  .SetUInt64("memory_limit_bytes", kGenerousLimit)
                  .ok());
  context.ApplySettings();
  ScanOptions options = MakeScanOptions(&context);
  EXPECT_EQ(options.context, &context);
  EXPECT_EQ(options.num_threads, 1u);
  ASSERT_TRUE(options.overrides.byteslice.has_value());
  EXPECT_FALSE(*options.overrides.byteslice);

  BIPieScan scan(table, MakeQuery(true), options);
  Result<QueryResult> got = scan.Execute();
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_GT(scan.stats().selection.gather, 0u);
  EXPECT_EQ(scan.stats().selection.compact, 0u);
  EXPECT_EQ(scan.stats().selection.special_group, 0u);
  EXPECT_EQ(context.memory_tracker().used(), 0u);
}

}  // namespace
}  // namespace bipie
