// Unit tests for the morsel-driven execution subsystem (src/exec):
// Scheduler work distribution and stealing, TaskGroup join semantics
// (including cancel-before-start, cancellation mid-stream, and exceptions
// thrown inside tasks), and QueryContext cancellation/deadline triggers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include "exec/query_context.h"
#include "exec/scheduler.h"
#include "exec/task_group.h"

namespace bipie {
namespace {

TEST(SchedulerTest, RunsEverySubmittedTask) {
  Scheduler scheduler(4);
  std::atomic<int> counter{0};
  TaskGroup group(&scheduler);
  for (int i = 0; i < 1000; ++i) {
    group.Submit([&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(SchedulerTest, GlobalPoolIsASingleton) {
  Scheduler& a = Scheduler::Global();
  Scheduler& b = Scheduler::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.num_workers(), 1u);
}

TEST(SchedulerTest, WorkSpreadsAcrossWorkersViaStealing) {
  // Tasks sleep briefly, so a single worker draining everything serially
  // would leave the other three idle for ~tens of milliseconds — stealing
  // must pull at least one task onto a second thread.
  Scheduler scheduler(4);
  std::mutex mu;
  std::set<std::thread::id> executors;
  TaskGroup group(&scheduler);
  for (int i = 0; i < 32; ++i) {
    group.Submit([&mu, &executors] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      std::lock_guard<std::mutex> lock(mu);
      executors.insert(std::this_thread::get_id());
    });
  }
  group.Wait();
  EXPECT_GE(executors.size(), 2u);
}

TEST(TaskGroupTest, WaitHelpsWhenEveryWorkerIsBusy) {
  // Pin the pool's only worker on a task blocked behind a promise; a group
  // joining 64 queued tasks can then only finish if Wait() runs them on the
  // joining thread. The test hangs (and fails by timeout) otherwise.
  Scheduler scheduler(1);
  std::promise<void> started;
  std::promise<void> release;
  std::shared_future<void> gate = release.get_future().share();
  TaskGroup blocker(&scheduler);
  blocker.Submit([&started, gate] {
    started.set_value();
    gate.wait();
  });
  // Wait until the worker actually holds the blocker — otherwise the helping
  // Wait() below could steal it and block on the gate itself.
  started.get_future().wait();

  std::atomic<int> counter{0};
  TaskGroup group(&scheduler);
  for (int i = 0; i < 64; ++i) {
    group.Submit([&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 64);

  release.set_value();
  blocker.Wait();
}

TEST(TaskGroupTest, CancelBeforeStartSkipsEveryTask) {
  Scheduler scheduler(2);
  QueryContext context;
  context.Cancel();
  std::atomic<int> ran{0};
  TaskGroup group(&scheduler, &context);
  for (int i = 0; i < 100; ++i) {
    group.Submit([&ran] { ran.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(ran.load(), 0);
}

TEST(TaskGroupTest, CancelBetweenSubmissionsSkipsLaterTasks) {
  Scheduler scheduler(2);
  QueryContext context;
  std::atomic<int> ran{0};
  TaskGroup first(&scheduler, &context);
  first.Submit([&ran] { ran.fetch_add(1); });
  first.Wait();
  EXPECT_EQ(ran.load(), 1);

  context.Cancel();
  TaskGroup second(&scheduler, &context);
  for (int i = 0; i < 10; ++i) {
    second.Submit([&ran] { ran.fetch_add(1); });
  }
  second.Wait();
  EXPECT_EQ(ran.load(), 1);  // nothing after the cancel runs
}

TEST(TaskGroupTest, ExceptionInTaskRethrownAtWait) {
  Scheduler scheduler(2);
  std::atomic<int> ran{0};
  TaskGroup group(&scheduler);
  for (int i = 0; i < 8; ++i) {
    group.Submit([&ran, i] {
      if (i == 3) throw std::runtime_error("task 3 exploded");
      ran.fetch_add(1);
    });
  }
  EXPECT_THROW(group.Wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 7);  // one exception, the other tasks still ran
  EXPECT_FALSE(group.has_exception());  // Wait() consumed it
}

TEST(TaskGroupTest, DestructorJoinsOutstandingTasks) {
  Scheduler scheduler(2);
  std::atomic<int> ran{0};
  {
    TaskGroup group(&scheduler);
    for (int i = 0; i < 50; ++i) {
      group.Submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // No Wait(): the destructor must join before `ran` goes out of scope.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(QueryContextTest, CancelLatchesAndReports) {
  QueryContext context;
  EXPECT_FALSE(context.is_cancelled());
  EXPECT_TRUE(context.CheckNotCancelled().ok());
  context.Cancel();
  EXPECT_TRUE(context.is_cancelled());
  EXPECT_EQ(context.CheckNotCancelled().code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, CancelAfterChecksTripsAtTheConfiguredPoint) {
  QueryContext context;
  context.CancelAfterChecks(3);
  EXPECT_TRUE(context.CheckNotCancelled().ok());   // 3 -> 2
  EXPECT_TRUE(context.CheckNotCancelled().ok());   // 2 -> 1
  EXPECT_TRUE(context.CheckNotCancelled().ok());   // 1 -> 0
  EXPECT_EQ(context.CheckNotCancelled().code(), StatusCode::kCancelled);
  EXPECT_TRUE(context.is_cancelled());
}

TEST(QueryContextTest, ExpiredDeadlineCancels) {
  QueryContext context;
  context.set_deadline(std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1));
  EXPECT_EQ(context.CheckNotCancelled().code(), StatusCode::kCancelled);
  EXPECT_TRUE(context.is_cancelled());
}

TEST(QueryContextTest, FutureDeadlineDoesNotCancel) {
  QueryContext context;
  context.set_deadline(std::chrono::steady_clock::now() +
                       std::chrono::hours(1));
  EXPECT_TRUE(context.CheckNotCancelled().ok());
  EXPECT_FALSE(context.is_cancelled());
}

}  // namespace
}  // namespace bipie
