// Data-skew stress (§5.1): partially sorted and Zipf-distributed group
// columns create the high-frequency-group pattern that stalls naive
// accumulator updates. Every strategy must stay exact under skew.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baseline/scalar_engine.h"
#include "common/random.h"
#include "core/scan.h"

namespace bipie {
namespace {

enum class SkewKind { kZipf, kSorted, kRuns, kSingleHot };

constexpr size_t striding() { return 997; }

Table MakeSkewedTable(SkewKind kind, size_t rows, uint64_t seed) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"y", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"f", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 8192);
  Rng rng(seed);
  ZipfGenerator zipf(12, 0.9, seed + 1);
  std::vector<int64_t> sorted_groups;
  if (kind == SkewKind::kSorted) {
    for (size_t i = 0; i < rows; ++i) {
      sorted_groups.push_back(static_cast<int64_t>(rng.NextBounded(12)));
    }
    std::sort(sorted_groups.begin(), sorted_groups.end());
  }
  for (size_t i = 0; i < rows; ++i) {
    int64_t g;
    switch (kind) {
      case SkewKind::kZipf:
        g = static_cast<int64_t>(zipf.Next());
        break;
      case SkewKind::kSorted:
        g = sorted_groups[i];
        break;
      case SkewKind::kRuns:
        // Long runs of the same group (partially sorted input).
        g = static_cast<int64_t>((i / striding()) % 12);
        break;
      case SkewKind::kSingleHot:
        // 95% of rows hit one group.
        g = rng.NextBernoulli(0.95)
                ? 0
                : static_cast<int64_t>(1 + rng.NextBounded(11));
        break;
    }
    app.AppendRow({g, rng.NextInRange(0, 16000), rng.NextInRange(0, 250),
                   rng.NextInRange(0, 99)});
  }
  app.Flush();
  return table;
}

class SkewSweep : public ::testing::TestWithParam<SkewKind> {};

TEST_P(SkewSweep, AllStrategiesExactUnderSkew) {
  Table table = MakeSkewedTable(GetParam(), 30000, 314);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("x"),
                      AggregateSpec::Sum("y"), AggregateSpec::Min("x"),
                      AggregateSpec::Max("y")};
  query.filters.emplace_back("f", CompareOp::kLt, int64_t{80});
  auto expected = ExecuteQueryNaive(table, query);
  ASSERT_TRUE(expected.ok());

  for (auto sel : {SelectionStrategy::kGather, SelectionStrategy::kCompact,
                   SelectionStrategy::kSpecialGroup}) {
    for (auto agg :
         {AggregationStrategy::kScalar, AggregationStrategy::kInRegister,
          AggregationStrategy::kSortBased,
          AggregationStrategy::kMultiAggregate}) {
      ScanOptions options;
      options.overrides.selection = sel;
      options.overrides.aggregation = agg;
      auto got = ExecuteQuery(table, query, options);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got.value().rows.size(), expected.value().rows.size())
          << SelectionStrategyName(sel) << "+"
          << AggregationStrategyName(agg);
      for (size_t r = 0; r < got.value().rows.size(); ++r) {
        ASSERT_EQ(got.value().rows[r].sums, expected.value().rows[r].sums)
            << SelectionStrategyName(sel) << "+"
            << AggregationStrategyName(agg) << " row " << r;
        ASSERT_EQ(got.value().rows[r].count, expected.value().rows[r].count);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SkewKinds, SkewSweep,
                         ::testing::Values(SkewKind::kZipf, SkewKind::kSorted,
                                           SkewKind::kRuns,
                                           SkewKind::kSingleHot));

TEST(SkewTest, SortedGroupColumnBecomesRleAutomatically) {
  // Fully sorted group values compress to runs; the auto encoder should
  // pick RLE and the scan must still group correctly through the RLE
  // group-mapper path.
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kAuto},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 1 << 16);
  Rng rng(9);
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 10000; ++i) {
      app.AppendRow({g, rng.NextInRange(0, 1000)});
    }
  }
  app.Flush();
  EXPECT_EQ(table.segment(0).column(0).encoding(), Encoding::kRle);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("x")};
  auto expected = ExecuteQueryNaive(table, query);
  auto got = ExecuteQuery(table, query);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got.value().rows.size(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(got.value().rows[r].sums, expected.value().rows[r].sums);
  }
}

}  // namespace
}  // namespace bipie
