#include "encoding/dictionary.h"

#include <gtest/gtest.h>

namespace bipie {
namespace {

TEST(IntDictionaryTest, AssignsConsecutiveIds) {
  IntDictionary dict;
  EXPECT_EQ(dict.GetOrInsert(100), 0u);
  EXPECT_EQ(dict.GetOrInsert(-5), 1u);
  EXPECT_EQ(dict.GetOrInsert(100), 0u);  // idempotent
  EXPECT_EQ(dict.GetOrInsert(7), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(IntDictionaryTest, ValueLookupInverts) {
  IntDictionary dict;
  for (int64_t v : {5, 10, -3, 0}) dict.GetOrInsert(v);
  for (uint32_t id = 0; id < dict.size(); ++id) {
    EXPECT_EQ(dict.Find(dict.value(id)), static_cast<int64_t>(id));
  }
}

TEST(IntDictionaryTest, FindMissing) {
  IntDictionary dict;
  dict.GetOrInsert(1);
  EXPECT_EQ(dict.Find(2), -1);
}

TEST(StringDictionaryTest, AssignsConsecutiveIds) {
  StringDictionary dict;
  EXPECT_EQ(dict.GetOrInsert("A"), 0u);
  EXPECT_EQ(dict.GetOrInsert("N"), 1u);
  EXPECT_EQ(dict.GetOrInsert("R"), 2u);
  EXPECT_EQ(dict.GetOrInsert("A"), 0u);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.value(1), "N");
}

TEST(StringDictionaryTest, FindMissing) {
  StringDictionary dict;
  dict.GetOrInsert("x");
  EXPECT_EQ(dict.Find("y"), -1);
  EXPECT_EQ(dict.Find("x"), 0);
}

TEST(StringDictionaryTest, EmptyStringIsAValue) {
  StringDictionary dict;
  EXPECT_EQ(dict.GetOrInsert(""), 0u);
  EXPECT_EQ(dict.Find(""), 0);
}

}  // namespace
}  // namespace bipie
