// Checksummed table format v2: round-trip, checksum detection, legacy v1
// compatibility, LoadOptions knobs, and version negotiation.
#include "storage/table_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/scan.h"

namespace bipie {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Table MakeRichTable(size_t rows, uint64_t seed) {
  Table table({{"flag", ColumnType::kString},
               {"packed", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"dict", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"runs", ColumnType::kInt64, EncodingChoice::kRle},
               {"mono", ColumnType::kInt64, EncodingChoice::kDelta}});
  TableAppender app(&table, 2048);
  Rng rng(seed);
  const char* flags[3] = {"A", "N", "R"};
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({0, rng.NextInRange(-200, 200),
                   1000 * static_cast<int64_t>(rng.NextBounded(5)),
                   static_cast<int64_t>(i / 100),
                   static_cast<int64_t>(i * 3) + rng.NextInRange(0, 2)},
                  {flags[rng.NextBounded(3)], "", "", "", ""});
  }
  app.Flush();
  return table;
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(std::ftell(f));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

TEST(TableIoV2Test, DefaultSaveWritesV2Magic) {
  Table table = MakeRichTable(500, 3);
  const std::string path = TempPath("v2-magic.bipie");
  ASSERT_TRUE(SaveTable(table, path).ok());
  const std::vector<uint8_t> bytes = ReadFile(path);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(std::memcmp(bytes.data(), "BIPIETB2", 8), 0);
  std::remove(path.c_str());
}

TEST(TableIoV2Test, RoundTripPreservesEverything) {
  Table original = MakeRichTable(5000, 17);
  original.mutable_segment(0).DeleteRow(7);
  original.mutable_segment(1).DeleteRow(100);
  const std::string path = TempPath("v2-roundtrip.bipie");
  ASSERT_TRUE(SaveTable(original, path).ok());

  auto loaded = LoadTable(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table& t = loaded.value();
  EXPECT_EQ(t.num_rows(), original.num_rows());
  EXPECT_EQ(t.num_segments(), original.num_segments());
  EXPECT_EQ(t.segment(0).num_deleted(), 1u);
  EXPECT_EQ(t.segment(0).alive_bytes()[7], 0x00);
  for (size_t s = 0; s < t.num_segments(); ++s) {
    const size_t n = t.segment(s).num_rows();
    for (size_t c = 0; c < t.num_columns(); ++c) {
      std::vector<int64_t> a(n), b(n);
      original.segment(s).column(c).DecodeInt64(0, n, a.data());
      t.segment(s).column(c).DecodeInt64(0, n, b.data());
      ASSERT_EQ(a, b) << "segment " << s << " column " << c;
    }
  }
  std::remove(path.c_str());
}

TEST(TableIoV2Test, ChecksumDetectsPayloadFlip) {
  Table table = MakeRichTable(2000, 5);
  const std::string path = TempPath("v2-flip.bipie");
  ASSERT_TRUE(SaveTable(table, path).ok());
  std::vector<uint8_t> bytes = ReadFile(path);
  // Flip one byte well inside the packed data of some column block.
  bytes[bytes.size() / 2] ^= 0x40;
  WriteFile(path, bytes);
  auto loaded = LoadTable(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(TableIoV2Test, VerifyChecksumsOffSkipsCrcButNotValidation) {
  Table table = MakeRichTable(2000, 5);
  const std::string path = TempPath("v2-crcfield.bipie");
  ASSERT_TRUE(SaveTable(table, path).ok());
  std::vector<uint8_t> bytes = ReadFile(path);
  // Corrupt the stored *checksum field* of the header block (offset 8 is
  // the u64 length, offset 16 the u32 crc32c): the payload itself is
  // intact, so only checksum verification can object.
  bytes[16] ^= 0xFF;
  WriteFile(path, bytes);

  auto strict = LoadTable(path);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kDataLoss);

  LoadOptions no_verify;
  no_verify.verify_checksums = false;
  auto lax = LoadTable(path, no_verify);
  ASSERT_TRUE(lax.ok()) << lax.status().ToString();
  EXPECT_EQ(lax.value().num_rows(), table.num_rows());
  // Deep validation still ran (and passed) on the intact payloads.
  EXPECT_TRUE(lax.value().Validate().ok());
  std::remove(path.c_str());
}

TEST(TableIoV2Test, V1FilesStillLoad) {
  Table original = MakeRichTable(3000, 9);
  const std::string path = TempPath("v1-compat.bipie");
  SaveOptions v1;
  v1.format_version = 1;
  ASSERT_TRUE(SaveTable(original, path, v1).ok());
  const std::vector<uint8_t> bytes = ReadFile(path);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(std::memcmp(bytes.data(), "BIPIETB1", 8), 0);

  auto loaded = LoadTable(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().num_rows(), original.num_rows());

  // Queries agree across the format downgrade.
  QuerySpec query;
  query.group_by = {"flag"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("packed")};
  auto before = ExecuteQuery(original, query);
  auto after = ExecuteQuery(loaded.value(), query);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before.value().rows.size(), after.value().rows.size());
  std::remove(path.c_str());
}

TEST(TableIoV2Test, StrictModeRefusesV1) {
  Table table = MakeRichTable(500, 21);
  const std::string path = TempPath("v1-strict.bipie");
  SaveOptions v1;
  v1.format_version = 1;
  ASSERT_TRUE(SaveTable(table, path, v1).ok());
  LoadOptions strict;
  strict.strict = true;
  auto loaded = LoadTable(path, strict);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotSupported);
  // The same options accept a v2 file.
  ASSERT_TRUE(SaveTable(table, path).ok());
  EXPECT_TRUE(LoadTable(path, strict).ok());
  std::remove(path.c_str());
}

TEST(TableIoV2Test, UnknownFutureVersionIsNotSupported) {
  const std::string path = TempPath("v9.bipie");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("BIPIETB9-then-arbitrary-bytes", 1, 29, f);
  std::fclose(f);
  auto loaded = LoadTable(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotSupported);
  std::remove(path.c_str());
}

TEST(TableIoV2Test, UnknownSaveVersionIsNotSupported) {
  Table table = MakeRichTable(100, 1);
  SaveOptions bad;
  bad.format_version = 3;
  EXPECT_EQ(SaveTable(table, TempPath("v3.bipie"), bad).code(),
            StatusCode::kNotSupported);
}

TEST(TableIoV2Test, StandaloneValidatePassesOnBuiltTables) {
  Table table = MakeRichTable(4000, 33);
  table.mutable_segment(0).DeleteRow(3);
  EXPECT_TRUE(table.Validate().ok());
  for (size_t s = 0; s < table.num_segments(); ++s) {
    EXPECT_TRUE(table.segment(s).Validate().ok());
    for (size_t c = 0; c < table.num_columns(); ++c) {
      EXPECT_TRUE(table.segment(s).column(c).Validate().ok());
    }
  }
}

TEST(TableIoV2Test, TruncatedV2IsStructuredError) {
  Table table = MakeRichTable(1000, 15);
  const std::string path = TempPath("v2-trunc.bipie");
  ASSERT_TRUE(SaveTable(table, path).ok());
  std::vector<uint8_t> bytes = ReadFile(path);
  bytes.resize(bytes.size() / 3);
  WriteFile(path, bytes);
  auto loaded = LoadTable(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bipie
