#include "core/aggregate_processor.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "storage/table.h"

namespace bipie {
namespace {

struct ProcessorFixture {
  Table table;
  QuerySpec query;

  explicit ProcessorFixture(size_t rows = 8192, int num_groups = 5,
                            uint64_t seed = 10)
      : table({{"g", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"y", ColumnType::kInt64, EncodingChoice::kBitPacked}}) {
    TableAppender app(&table, rows);
    Rng rng(seed);
    for (size_t i = 0; i < rows; ++i) {
      app.AppendRow({static_cast<int64_t>(rng.NextBounded(num_groups)),
                     rng.NextInRange(0, 255),
                     rng.NextInRange(-100, 100)});
    }
    app.Flush();
    query.group_by = {"g"};
    query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("x"),
                        AggregateSpec::Sum("y")};
    query.filters.emplace_back("x", CompareOp::kLt, int64_t{200});
  }

  const Segment& segment() const { return table.segment(0); }
};

TEST(AggregateProcessorTest, BindResolvesStrategyFromMetadata) {
  ProcessorFixture f;
  AggregateProcessor processor;
  ASSERT_TRUE(
      processor.Bind(f.table, f.segment(), f.query, {}).ok());
  // 5 groups (+special), two raw sums of <= 8 bits... y spans [-100,100] ->
  // 8-bit offsets. Small bits + few groups: in-register territory.
  EXPECT_EQ(processor.aggregation_strategy(),
            AggregationStrategy::kInRegister);
  EXPECT_EQ(processor.num_groups(), 5);
}

TEST(AggregateProcessorTest, BindRejectsStringAggregate) {
  Table table({{"s", ColumnType::kString}});
  TableAppender app(&table, 16);
  app.AppendRow({0}, {"a"});
  app.Flush();
  QuerySpec query;
  query.aggregates = {AggregateSpec::Sum("s")};
  AggregateProcessor processor;
  EXPECT_EQ(processor.Bind(table, table.segment(0), query, {}).code(),
            StatusCode::kNotSupported);
}

TEST(AggregateProcessorTest, BindRejectsInfeasibleForcedStrategies) {
  ProcessorFixture f;
  // In-register cannot take expression aggregates.
  QuerySpec expr_query = f.query;
  expr_query.aggregates.push_back(AggregateSpec::SumExpr(
      Expr::Mul(Expr::Column(1), Expr::Column(2))));
  StrategyOverrides overrides;
  overrides.aggregation = AggregationStrategy::kInRegister;
  AggregateProcessor processor;
  EXPECT_EQ(
      processor.Bind(f.table, f.segment(), expr_query, overrides).code(),
      StatusCode::kNotSupported);

  // Multi-aggregate: five 64-bit expression slots cannot fit.
  QuerySpec wide_query = f.query;
  wide_query.aggregates.clear();
  for (int i = 0; i < 5; ++i) {
    wide_query.aggregates.push_back(AggregateSpec::SumExpr(
        Expr::Add(Expr::Column(2), Expr::Constant(i))));
  }
  overrides.aggregation = AggregationStrategy::kMultiAggregate;
  EXPECT_EQ(
      processor.Bind(f.table, f.segment(), wide_query, overrides).code(),
      StatusCode::kNotSupported);

  // Sort-based needs at least one sum.
  QuerySpec count_query;
  count_query.group_by = {"g"};
  count_query.aggregates = {AggregateSpec::Count()};
  overrides.aggregation = AggregationStrategy::kSortBased;
  EXPECT_EQ(
      processor.Bind(f.table, f.segment(), count_query, overrides).code(),
      StatusCode::kNotSupported);
}

TEST(AggregateProcessorTest, PerBatchSelectionAdaptsToSelectivity) {
  ProcessorFixture f(16384, 5, 11);
  AggregateProcessor processor;
  ASSERT_TRUE(processor.Bind(f.table, f.segment(), f.query, {}).ok());
  // Batch 0: 1% selected -> gather. Batch 1: 99% selected -> special group.
  std::vector<uint8_t> sel(4096);
  Rng rng(3);
  for (auto& b : sel) b = rng.NextBernoulli(0.01) ? 0xFF : 0x00;
  ASSERT_TRUE(processor.ProcessBatch(0, 4096, sel.data()).ok());
  for (auto& b : sel) b = rng.NextBernoulli(0.99) ? 0xFF : 0x00;
  ASSERT_TRUE(processor.ProcessBatch(4096, 4096, sel.data()).ok());
  EXPECT_EQ(processor.selection_stats().gather, 1u);
  EXPECT_EQ(processor.selection_stats().special_group, 1u);
}

TEST(AggregateProcessorTest, AllSelectedFilterCountsAsUnfiltered) {
  ProcessorFixture f;
  AggregateProcessor processor;
  ASSERT_TRUE(processor.Bind(f.table, f.segment(), f.query, {}).ok());
  std::vector<uint8_t> sel(4096, 0xFF);
  ASSERT_TRUE(processor.ProcessBatch(0, 4096, sel.data()).ok());
  EXPECT_EQ(processor.selection_stats().unfiltered, 1u);
}

TEST(AggregateProcessorTest, AllRejectedBatchIsSkipped) {
  ProcessorFixture f;
  AggregateProcessor processor;
  ASSERT_TRUE(processor.Bind(f.table, f.segment(), f.query, {}).ok());
  std::vector<uint8_t> sel(4096, 0x00);
  ASSERT_TRUE(processor.ProcessBatch(0, 4096, sel.data()).ok());
  AggregateProcessor::SegmentResult result;
  ASSERT_TRUE(processor.Finish(&result).ok());
  for (int g = 0; g < result.num_groups; ++g) {
    EXPECT_EQ(result.counts[g], 0u);
  }
}

TEST(AggregateProcessorTest, CompensationHandlesNegativeBases) {
  // Column y has base -100; sums must come back in the logical domain.
  ProcessorFixture f(4096, 3, 12);
  AggregateProcessor processor;
  ASSERT_TRUE(processor.Bind(f.table, f.segment(), f.query, {}).ok());
  ASSERT_TRUE(processor.ProcessBatch(0, 4096, nullptr).ok());
  AggregateProcessor::SegmentResult result;
  ASSERT_TRUE(processor.Finish(&result).ok());

  // Manual reference.
  std::vector<int64_t> g(4096), x(4096), y(4096);
  f.segment().column(0).DecodeInt64(0, 4096, g.data());
  f.segment().column(1).DecodeInt64(0, 4096, x.data());
  f.segment().column(2).DecodeInt64(0, 4096, y.data());
  const IntDictionary& dict = *f.segment().column(0).int_dictionary();
  std::vector<uint64_t> counts(result.num_groups, 0);
  std::vector<int64_t> sum_y(result.num_groups, 0);
  for (size_t i = 0; i < 4096; ++i) {
    // g decodes to logical values; map back to dictionary id = group id.
    const int64_t gid = dict.Find(g[i]);
    ++counts[gid];
    sum_y[gid] += y[i];
  }
  for (int gid = 0; gid < result.num_groups; ++gid) {
    EXPECT_EQ(result.counts[gid], counts[gid]);
    EXPECT_EQ(result.values[gid * 3 + 2], sum_y[gid]) << "group " << gid;
  }
}

TEST(AggregateProcessorTest, SharedColumnInputsProduceSharedSlots) {
  ProcessorFixture f;
  QuerySpec query = f.query;
  query.aggregates = {AggregateSpec::Sum("x"), AggregateSpec::Avg("x"),
                      AggregateSpec::Count()};
  AggregateProcessor processor;
  ASSERT_TRUE(processor.Bind(f.table, f.segment(), query, {}).ok());
  ASSERT_TRUE(processor.ProcessBatch(0, 4096, nullptr).ok());
  AggregateProcessor::SegmentResult result;
  ASSERT_TRUE(processor.Finish(&result).ok());
  for (int g = 0; g < result.num_groups; ++g) {
    // sum(x) and avg(x) slots must agree; count slot equals counts.
    EXPECT_EQ(result.values[g * 3 + 0], result.values[g * 3 + 1]);
    EXPECT_EQ(result.values[g * 3 + 2],
              static_cast<int64_t>(result.counts[g]));
  }
}

TEST(AggregateProcessorTest, CompactModeEvaluatesExpressionsPostFilter) {
  // Compact selection must produce identical expression sums to the other
  // modes even though it evaluates over compacted (dense) inputs, and the
  // shared-column cache must not leak stale dense arrays across batches.
  ProcessorFixture f(12288, 4, 21);
  ExprPtr shared =
      Expr::Mul(Expr::Column(1), Expr::Sub(Expr::Constant(50),
                                           Expr::Column(2)));
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::SumExpr(shared),
                      AggregateSpec::SumExpr(Expr::Mul(shared,
                                                       Expr::Constant(2)))};
  query.filters.emplace_back("x", CompareOp::kLt, int64_t{200});

  auto run = [&](SelectionStrategy sel) {
    StrategyOverrides overrides;
    overrides.selection = sel;
    overrides.aggregation = AggregationStrategy::kMultiAggregate;
    AggregateProcessor processor;
    EXPECT_TRUE(processor.Bind(f.table, f.segment(), query, overrides).ok());
    Rng rng(33);
    std::vector<uint8_t> sel_bytes(4096);
    for (size_t start = 0; start < 12288; start += 4096) {
      Rng batch_rng(start + 1);
      for (auto& v : sel_bytes) {
        v = batch_rng.NextBernoulli(0.6) ? 0xFF : 0x00;
      }
      EXPECT_TRUE(processor.ProcessBatch(start, 4096, sel_bytes.data()).ok());
    }
    AggregateProcessor::SegmentResult result;
    EXPECT_TRUE(processor.Finish(&result).ok());
    return result;
  };

  const auto compact = run(SelectionStrategy::kCompact);
  const auto gather = run(SelectionStrategy::kGather);
  const auto special = run(SelectionStrategy::kSpecialGroup);
  ASSERT_EQ(compact.values.size(), gather.values.size());
  EXPECT_EQ(compact.values, gather.values);
  EXPECT_EQ(compact.values, special.values);
  EXPECT_EQ(compact.counts, gather.counts);
  // The nested expression must be exactly double the shared one.
  for (int g = 0; g < compact.num_groups; ++g) {
    EXPECT_EQ(compact.values[g * 3 + 2], compact.values[g * 3 + 1] * 2);
  }
}

TEST(AggregateProcessorTest, SharedSubtreeEvaluatedOnceViaCache) {
  // disc_price-style sharing: the second expression embeds the first.
  ProcessorFixture f;
  ExprPtr base_expr =
      Expr::Mul(Expr::Column(1), Expr::Sub(Expr::Constant(100),
                                           Expr::Column(2)));
  ExprPtr nested = Expr::Mul(base_expr, Expr::Constant(3));
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::SumExpr(base_expr),
                      AggregateSpec::SumExpr(nested)};
  AggregateProcessor processor;
  ASSERT_TRUE(processor.Bind(f.table, f.segment(), query, {}).ok());
  ASSERT_TRUE(processor.ProcessBatch(0, 4096, nullptr).ok());
  ASSERT_TRUE(processor.ProcessBatch(4096, 4096, nullptr).ok());
  AggregateProcessor::SegmentResult result;
  ASSERT_TRUE(processor.Finish(&result).ok());
  for (int g = 0; g < result.num_groups; ++g) {
    EXPECT_EQ(result.values[g * 2 + 1], result.values[g * 2 + 0] * 3);
  }
}

}  // namespace
}  // namespace bipie
