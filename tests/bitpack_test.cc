#include "encoding/bitpack.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/bits.h"
#include "test_util.h"

namespace bipie {
namespace {

TEST(BitsTest, BitsRequired) {
  EXPECT_EQ(BitsRequired(0), 1);
  EXPECT_EQ(BitsRequired(1), 1);
  EXPECT_EQ(BitsRequired(2), 2);
  EXPECT_EQ(BitsRequired(255), 8);
  EXPECT_EQ(BitsRequired(256), 9);
  EXPECT_EQ(BitsRequired(~0ULL), 64);
}

TEST(BitsTest, SmallestWordBytes) {
  EXPECT_EQ(SmallestWordBytes(1), 1);
  EXPECT_EQ(SmallestWordBytes(8), 1);
  EXPECT_EQ(SmallestWordBytes(9), 2);
  EXPECT_EQ(SmallestWordBytes(16), 2);
  EXPECT_EQ(SmallestWordBytes(17), 4);
  EXPECT_EQ(SmallestWordBytes(32), 4);
  EXPECT_EQ(SmallestWordBytes(33), 8);
  EXPECT_EQ(SmallestWordBytes(64), 8);
}

TEST(BitsTest, LowBitsMask) {
  EXPECT_EQ(LowBitsMask(0), 0u);
  EXPECT_EQ(LowBitsMask(1), 1u);
  EXPECT_EQ(LowBitsMask(8), 0xFFu);
  EXPECT_EQ(LowBitsMask(64), ~0ULL);
}

TEST(BitPackTest, PackedBytesFormula) {
  EXPECT_EQ(BitPackedBytes(0, 5), 0u);
  EXPECT_EQ(BitPackedBytes(8, 1), 1u);
  EXPECT_EQ(BitPackedBytes(9, 1), 2u);
  EXPECT_EQ(BitPackedBytes(3, 7), 3u);  // 21 bits -> 3 bytes
  EXPECT_EQ(BitPackedBytes(1, 64), 8u);
}

TEST(BitPackTest, UnpackOneMatchesInput) {
  for (int w : {1, 3, 7, 8, 13, 25, 26, 31, 32, 33, 57, 58, 63, 64}) {
    auto values = test::RandomPackedValues(257, w, 1000 + w);
    auto packed = test::Pack(values, w);
    for (size_t i = 0; i < values.size(); ++i) {
      ASSERT_EQ(BitUnpackOne(packed.data(), i, w), values[i])
          << "w=" << w << " i=" << i;
    }
  }
}

// Property sweep: pack -> unpack round-trips exactly for every bit width on
// every ISA tier, at the smallest word size.
class BitPackRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(BitPackRoundTrip, SmallestWord) {
  const int w = GetParam();
  const size_t n = 1000;  // not a multiple of any SIMD block size
  auto values = test::RandomPackedValues(n, w, 7 * w + 1);
  auto packed = test::Pack(values, w);
  const int word = SmallestWordBytes(w);
  test::ForEachIsaTier([&](IsaTier) {
    AlignedBuffer out(n * word);
    BitUnpack(packed.data(), 0, n, w, out.data());
    for (size_t i = 0; i < n; ++i) {
      uint64_t got = 0;
      std::memcpy(&got, out.data() + i * word, word);
      ASSERT_EQ(got, values[i]) << "w=" << w << " i=" << i;
    }
  });
}

TEST_P(BitPackRoundTrip, UnalignedStartOffsets) {
  const int w = GetParam();
  const size_t n = 300;
  auto values = test::RandomPackedValues(n, w, 31 * w + 5);
  auto packed = test::Pack(values, w);
  const int word = SmallestWordBytes(w);
  test::ForEachIsaTier([&](IsaTier) {
    for (size_t start : {1u, 3u, 7u, 8u, 9u, 63u}) {
      const size_t m = n - start;
      AlignedBuffer out(m * word);
      BitUnpack(packed.data(), start, m, w, out.data());
      for (size_t i = 0; i < m; ++i) {
        uint64_t got = 0;
        std::memcpy(&got, out.data() + i * word, word);
        ASSERT_EQ(got, values[start + i]) << "w=" << w << " start=" << start
                                          << " i=" << i;
      }
    }
  });
}

TEST_P(BitPackRoundTrip, WidenedWords) {
  const int w = GetParam();
  const size_t n = 500;
  auto values = test::RandomPackedValues(n, w, 13 * w);
  auto packed = test::Pack(values, w);
  test::ForEachIsaTier([&](IsaTier) {
    for (int word = SmallestWordBytes(w); word <= 8; word *= 2) {
      AlignedBuffer out(n * word);
      BitUnpackToWord(packed.data(), 0, n, w, out.data(), word);
      for (size_t i = 0; i < n; ++i) {
        uint64_t got = 0;
        std::memcpy(&got, out.data() + i * word, word);
        ASSERT_EQ(got, values[i]) << "w=" << w << " word=" << word;
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(AllBitWidths, BitPackRoundTrip,
                         ::testing::Range(1, 65));

TEST(BitPackTest, MaximalValuesEveryWidth) {
  // All-ones values stress the mask/shift boundaries.
  for (int w = 1; w <= 64; ++w) {
    const size_t n = 100;
    std::vector<uint64_t> values(n, LowBitsMask(w));
    auto packed = test::Pack(values, w);
    AlignedBuffer out(n * 8);
    test::ForEachIsaTier([&](IsaTier) {
      BitUnpackToWord(packed.data(), 0, n, w, out.data(), 8);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out.data_as<uint64_t>()[i], LowBitsMask(w)) << "w=" << w;
      }
    });
  }
}

TEST(BitPackTest, EmptyInput) {
  AlignedBuffer packed(8);
  uint32_t sink = 0xABCD;
  BitUnpack(packed.data(), 0, 0, 17, &sink);
  EXPECT_EQ(sink, 0xABCDu);  // untouched
}

TEST(BitPackTest, SingleValue) {
  for (int w : {1, 12, 33, 64}) {
    std::vector<uint64_t> values = {LowBitsMask(w) - (w > 1 ? 1 : 0)};
    auto packed = test::Pack(values, w);
    uint64_t out = 0;
    BitUnpackToWord(packed.data(), 0, 1, w, &out, 8);
    EXPECT_EQ(out, values[0]);
  }
}

TEST(BitPackTest, AdjacentValuesDoNotBleed) {
  // Alternating zero / all-ones: any shift bug corrupts the zeros.
  for (int w : {3, 5, 7, 11, 13, 19, 23, 29, 31}) {
    const size_t n = 256;
    std::vector<uint64_t> values(n);
    for (size_t i = 0; i < n; ++i) values[i] = (i % 2) ? LowBitsMask(w) : 0;
    auto packed = test::Pack(values, w);
    AlignedBuffer out(n * 4);
    test::ForEachIsaTier([&](IsaTier) {
      BitUnpackToWord(packed.data(), 0, n, w, out.data(), 4);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out.data_as<uint32_t>()[i], values[i]) << "w=" << w;
      }
    });
  }
}

}  // namespace
}  // namespace bipie
