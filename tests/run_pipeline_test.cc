// Run-level execution (DESIGN.md §11) end-to-end: scans whose group and
// filter columns are RLE-clustered must take the kRunBased path, produce
// results byte-identical to the generic hash-aggregation engine, and fall
// back cleanly (with honest stats) whenever a morsel leaves the run-span
// envelope — deleted rows, forced selection, non-run columns.
//
// The tables here are built so RLE runs are longer than kBatchRows and the
// pooled scan is pinned to one-batch morsels, so every interesting case
// crosses batch AND morsel boundaries mid-run.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baseline/hash_agg.h"
#include "common/random.h"
#include "core/scan.h"
#include "tests/test_util.h"

namespace bipie {
namespace {

void ExpectSameResults(const QueryResult& got, const QueryResult& expected,
                       const std::string& context) {
  ASSERT_EQ(got.rows.size(), expected.rows.size()) << context;
  for (size_t r = 0; r < got.rows.size(); ++r) {
    ASSERT_EQ(got.rows[r].group, expected.rows[r].group)
        << context << " row " << r;
    ASSERT_EQ(got.rows[r].count, expected.rows[r].count)
        << context << " row " << r;
    ASSERT_EQ(got.rows[r].sums, expected.rows[r].sums)
        << context << " row " << r;
  }
}

// RLE-clustered table: group, second group, filter and one aggregate column
// are long-run RLE (every run longer than kBatchRows = 4096); `x` stays
// bit-packed random so the span-unpack SUM kernel is exercised too.
Table MakeRunTable(size_t rows, size_t segment_rows, uint64_t seed) {
  Table table({
      {"g", ColumnType::kInt64, EncodingChoice::kRle},
      {"g2", ColumnType::kInt64, EncodingChoice::kRle},
      {"f", ColumnType::kInt64, EncodingChoice::kRle},
      {"amount", ColumnType::kInt64, EncodingChoice::kRle},
      {"x", ColumnType::kInt64, EncodingChoice::kBitPacked},
  });
  TableAppender app(&table, segment_rows);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    const auto g = static_cast<int64_t>((i / 10000) % 5);
    const auto g2 = static_cast<int64_t>((i / 25000) % 3);
    const auto f = static_cast<int64_t>((i / 7000) % 4);
    const auto amount = static_cast<int64_t>((i / 6000) % 100) - 50;
    app.AppendRow({g, g2, f, amount, rng.NextInRange(0, 9999)});
  }
  app.Flush();
  return table;
}

QuerySpec MakeRunQuery(bool with_filter) {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("x"),
                      AggregateSpec::Sum("amount"),
                      AggregateSpec::Min("amount"),
                      AggregateSpec::Max("amount")};
  if (with_filter) {
    query.filters.emplace_back("f", CompareOp::kLt, int64_t{2});
  }
  return query;
}

TEST(RunPipelineTest, RunsCrossBatchAndMorselBoundaries) {
  // Two segments, runs of 10000 rows, one-batch morsels: every run spans
  // multiple batches and multiple pooled morsels.
  const size_t rows = 200000;
  Table table = MakeRunTable(rows, size_t{1} << 17, 7001);
  ASSERT_EQ(table.num_segments(), 2u);
  for (const bool with_filter : {false, true}) {
    QuerySpec query = MakeRunQuery(with_filter);
    auto expected = ExecuteQueryHashAgg(table, query);
    ASSERT_TRUE(expected.ok());
    for (const size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
      ScanOptions options;
      options.num_threads = threads;
      options.morsel_rows = kBatchRows;
      BIPieScan scan(table, query, options);
      auto got = scan.Execute();
      ASSERT_TRUE(got.ok()) << got.status().message();
      BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
      const std::string context = "threads=" + std::to_string(threads) +
                                  " filter=" + std::to_string(with_filter);
      ExpectSameResults(got.value(), expected.value(), context);
      const ScanStats& stats = scan.stats();
      EXPECT_EQ(stats.aggregation_segments[static_cast<int>(
                    AggregationStrategy::kRunBased)],
                table.num_segments())
          << context;
      EXPECT_EQ(stats.batches, 0u) << context;
      EXPECT_GT(stats.runs_aggregated, 0u) << context;
      EXPECT_EQ(stats.rows_scanned, rows) << context;
      EXPECT_EQ(stats.rows_run_aggregated, stats.rows_selected) << context;
      if (with_filter) {
        EXPECT_LT(stats.rows_selected, rows) << context;
      } else {
        EXPECT_EQ(stats.rows_selected, rows) << context;
      }
    }
  }
}

TEST(RunPipelineTest, DeletedRowInsideRunFallsBackToRowLevel) {
  Table table = MakeRunTable(200000, size_t{1} << 17, 7002);
  ASSERT_EQ(table.num_segments(), 2u);
  // A single deleted row in the middle of a run disqualifies segment 0 from
  // the run path; segment 1 stays run-based.
  table.mutable_segment(0).DeleteRow(12345);
  QuerySpec query = MakeRunQuery(/*with_filter=*/true);
  auto expected = ExecuteQueryHashAgg(table, query);
  ASSERT_TRUE(expected.ok());
  for (const size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    ScanOptions options;
    options.num_threads = threads;
    options.morsel_rows = kBatchRows;
    BIPieScan scan(table, query, options);
    auto got = scan.Execute();
    ASSERT_TRUE(got.ok()) << got.status().message();
    BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
    const std::string context = "threads=" + std::to_string(threads);
    ExpectSameResults(got.value(), expected.value(), context);
    const ScanStats& stats = scan.stats();
    EXPECT_EQ(stats.aggregation_segments[static_cast<int>(
                  AggregationStrategy::kRunBased)],
              1u)
        << context;
    // The deleted-row segment went through the batch loop; the clean one
    // never did.
    EXPECT_GT(stats.batches, 0u) << context;
    EXPECT_GT(stats.runs_aggregated, 0u) << context;
    EXPECT_EQ(stats.rows_scanned, 200000u) << context;
    EXPECT_LT(stats.rows_run_aggregated,
              table.segment(1).num_rows() + 1)
        << context;
  }
}

TEST(RunPipelineTest, ForcedRunBasedOnIneligibleDataIsNotSupported) {
  Table table = MakeRunTable(60000, size_t{1} << 17, 7003);
  table.mutable_segment(0).DeleteRow(1);
  QuerySpec query = MakeRunQuery(/*with_filter=*/false);
  ScanOptions options;
  options.overrides.aggregation = AggregationStrategy::kRunBased;
  auto got = test::ExecuteChecked(table, query, options);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotSupported);
}

TEST(RunPipelineTest, ForcedSelectionDisablesRunPath) {
  // A forced selection strategy pins the row-level machinery, so admission
  // must refuse the run path and the scan must still be exact.
  Table table = MakeRunTable(60000, size_t{1} << 17, 7004);
  QuerySpec query = MakeRunQuery(/*with_filter=*/true);
  auto expected = ExecuteQueryHashAgg(table, query);
  ASSERT_TRUE(expected.ok());
  ScanOptions options;
  options.overrides.selection = SelectionStrategy::kGather;
  BIPieScan scan(table, query, options);
  auto got = scan.Execute();
  ASSERT_TRUE(got.ok()) << got.status().message();
  BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
  ExpectSameResults(got.value(), expected.value(), "forced-selection");
  EXPECT_EQ(scan.stats().runs_aggregated, 0u);
  EXPECT_EQ(scan.stats().aggregation_segments[static_cast<int>(
                AggregationStrategy::kRunBased)],
            0u);
}

TEST(RunPipelineTest, ForcedRunBasedMatchesHashAgg) {
  Table table = MakeRunTable(120000, size_t{1} << 17, 7005);
  for (const bool with_filter : {false, true}) {
    QuerySpec query = MakeRunQuery(with_filter);
    auto expected = ExecuteQueryHashAgg(table, query);
    ASSERT_TRUE(expected.ok());
    ScanOptions options;
    options.overrides.aggregation = AggregationStrategy::kRunBased;
    options.num_threads = 0;
    options.morsel_rows = kBatchRows;
    BIPieScan scan(table, query, options);
    auto got = scan.Execute();
    ASSERT_TRUE(got.ok()) << got.status().message();
    BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
    ExpectSameResults(got.value(), expected.value(),
                      "forced filter=" + std::to_string(with_filter));
    EXPECT_GT(scan.stats().rows_run_aggregated, 0u);
  }
}

TEST(RunPipelineTest, CountOnlyCollapsesToRunMetadata) {
  Table table = MakeRunTable(120000, size_t{1} << 17, 7006);
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count()};
  query.filters.emplace_back("f", CompareOp::kGe, int64_t{1});
  auto expected = ExecuteQueryHashAgg(table, query);
  ASSERT_TRUE(expected.ok());
  BIPieScan scan(table, query, {});
  auto got = scan.Execute();
  ASSERT_TRUE(got.ok()) << got.status().message();
  BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
  ExpectSameResults(got.value(), expected.value(), "count-only");
  // No aggregate column is ever decoded: pure span arithmetic.
  EXPECT_EQ(scan.stats().batches, 0u);
  EXPECT_GT(scan.stats().runs_aggregated, 0u);
}

TEST(RunPipelineTest, TwoRleGroupColumns) {
  Table table = MakeRunTable(120000, size_t{1} << 17, 7007);
  QuerySpec query = MakeRunQuery(/*with_filter=*/true);
  query.group_by = {"g", "g2"};
  auto expected = ExecuteQueryHashAgg(table, query);
  ASSERT_TRUE(expected.ok());
  BIPieScan scan(table, query, {});
  auto got = scan.Execute();
  ASSERT_TRUE(got.ok()) << got.status().message();
  BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
  ExpectSameResults(got.value(), expected.value(), "two-col");
  EXPECT_GT(scan.stats().runs_aggregated, 0u);
}

TEST(RunPipelineTest, MetadataSatisfiedFilterStaysOnRunPath) {
  Table table = MakeRunTable(120000, size_t{1} << 17, 7008);
  QuerySpec query = MakeRunQuery(/*with_filter=*/true);
  // The bit-packed column's full value range: provably all-true from
  // metadata, so it must not force the row-level path.
  query.filters.emplace_back("x", CompareOp::kLe, int64_t{10000});
  auto expected = ExecuteQueryHashAgg(table, query);
  ASSERT_TRUE(expected.ok());
  BIPieScan scan(table, query, {});
  auto got = scan.Execute();
  ASSERT_TRUE(got.ok()) << got.status().message();
  BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
  ExpectSameResults(got.value(), expected.value(), "metadata-filter");
  EXPECT_GT(scan.stats().runs_aggregated, 0u);
  EXPECT_EQ(scan.stats().batches, 0u);
}

TEST(RunPipelineTest, SelectiveFilterOnBitPackedColumnFallsBack) {
  // A genuinely selective predicate on a non-RLE column has no run
  // representation; the scan must quietly use the row-level path.
  Table table = MakeRunTable(60000, size_t{1} << 17, 7009);
  QuerySpec query = MakeRunQuery(/*with_filter=*/false);
  query.filters.emplace_back("x", CompareOp::kLt, int64_t{5000});
  auto expected = ExecuteQueryHashAgg(table, query);
  ASSERT_TRUE(expected.ok());
  BIPieScan scan(table, query, {});
  auto got = scan.Execute();
  ASSERT_TRUE(got.ok()) << got.status().message();
  BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
  ExpectSameResults(got.value(), expected.value(), "selective-bitpacked");
  EXPECT_EQ(scan.stats().runs_aggregated, 0u);
  EXPECT_GT(scan.stats().batches, 0u);
}

TEST(RunPipelineTest, ShuffledGroupsNeverAdmitRunPath) {
  // Random group values never encode as RLE, so the run path must not be
  // chosen (this is the zero-regression guarantee for unsorted data).
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kAuto},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, size_t{1} << 16);
  Rng rng(7010);
  for (size_t i = 0; i < 100000; ++i) {
    app.AppendRow({static_cast<int64_t>(rng.NextBounded(8)),
                   rng.NextInRange(0, 999)});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("x")};
  BIPieScan scan(table, query, {});
  auto got = scan.Execute();
  ASSERT_TRUE(got.ok()) << got.status().message();
  BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
  EXPECT_EQ(scan.stats().runs_aggregated, 0u);
  EXPECT_EQ(scan.stats().aggregation_segments[static_cast<int>(
                AggregationStrategy::kRunBased)],
            0u);
}

}  // namespace
}  // namespace bipie
