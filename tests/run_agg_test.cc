// Differential tests for the run-span horizontal-sum kernels: every ISA
// tier must agree bit-for-bit with a trivially correct uint64 loop across
// word widths, lengths (SIMD remainders, empty input) and value patterns —
// including inputs long enough to cross the u16 kernel's internal
// 32-bit-accumulator flush boundary.
#include "vector/run_agg.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/bits.h"
#include "common/random.h"
#include "encoding/bitpack.h"
#include "test_util.h"

namespace bipie {
namespace {

// The obviously correct oracle: widen every element and add.
uint64_t ReferenceSum(const AlignedBuffer& buf, size_t n, int word_bytes) {
  uint64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t v = 0;
    std::memcpy(&v, buf.data() + i * static_cast<size_t>(word_bytes),
                static_cast<size_t>(word_bytes));
    total += v;
  }
  return total;
}

AlignedBuffer RandomWords(size_t n, int word_bytes, uint64_t seed,
                          uint64_t value_mask) {
  AlignedBuffer buf(n * static_cast<size_t>(word_bytes));
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t v = rng.Next() & value_mask;
    std::memcpy(buf.data() + i * static_cast<size_t>(word_bytes), &v,
                static_cast<size_t>(word_bytes));
  }
  return buf;
}

TEST(RunAggTest, MatchesReferenceAcrossWidthsAndTiers) {
  const size_t lengths[] = {0, 1, 3, 31, 32, 33, 100, 4096, 4097, 70001};
  for (const int word : {1, 2, 4, 8}) {
    const uint64_t value_mask =
        word == 8 ? ~uint64_t{0} : (uint64_t{1} << (8 * word)) - 1;
    for (const size_t n : lengths) {
      const AlignedBuffer buf =
          RandomWords(n, word, 1000 + n + word, value_mask);
      const uint64_t expected = ReferenceSum(buf, n, word);
      ASSERT_EQ(internal::HorizontalSumWordsScalar(buf.data(), n, word),
                expected)
          << "scalar word=" << word << " n=" << n;
      test::ForEachIsaTier([&](IsaTier tier) {
        ASSERT_EQ(HorizontalSumWords(buf.data(), n, word), expected)
            << "tier=" << static_cast<int>(tier) << " word=" << word
            << " n=" << n;
      });
    }
  }
}

TEST(RunAggTest, U16AllMaxCrossesAccumulatorFlushBoundary) {
  // 600000 max-valued u16 elements force the AVX2 kernel through its
  // 512000-element (16 lanes x 32000 iterations) 32-bit accumulator flush
  // with every lane at its worst-case increment.
  const size_t n = 600000;
  AlignedBuffer buf(n * 2);
  auto* v = buf.data_as<uint16_t>();
  for (size_t i = 0; i < n; ++i) v[i] = 0xFFFF;
  const uint64_t expected = uint64_t{0xFFFF} * n;
  test::ForEachIsaTier([&](IsaTier tier) {
    ASSERT_EQ(HorizontalSumWords(buf.data(), n, 2), expected)
        << "tier=" << static_cast<int>(tier);
  });
}

TEST(RunAggTest, U8AllMaxLongInput) {
  const size_t n = 1 << 20;
  AlignedBuffer buf(n);
  std::memset(buf.data(), 0xFF, n);
  const uint64_t expected = uint64_t{0xFF} * n;
  test::ForEachIsaTier([&](IsaTier tier) {
    ASSERT_EQ(HorizontalSumWords(buf.data(), n, 1), expected)
        << "tier=" << static_cast<int>(tier);
  });
}

// Builds a packed stream of n values masked to bit_width, with
// AlignedBuffer's readable padding past the logical end (the fused kernel's
// 64-byte loads rely on it).
AlignedBuffer PackRandom(size_t n, int bit_width, uint64_t seed,
                         std::vector<uint64_t>* values) {
  values->resize(n);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    (*values)[i] = rng.Next() & LowBitsMask(bit_width);
  }
  AlignedBuffer packed(BitPackedBytes(n, bit_width) + 8);
  BitPack(values->data(), n, bit_width, packed.data());
  return packed;
}

TEST(RunAggTest, SumBitPackedRangeMatchesScalarReference) {
  const int widths[] = {1, 3, 4, 6, 7, 8, 9, 12, 16, 17, 21, 25, 26, 33, 57};
  const size_t n = 9000;
  for (const int w : widths) {
    std::vector<uint64_t> values;
    const AlignedBuffer packed = PackRandom(n, w, 7000 + w, &values);
    const size_t starts[] = {0, 1, 5, 7, 8, 63, 4096};
    const size_t lens[] = {0, 1, 7, 15, 16, 63, 64, 65, 1023, 4889};
    for (const size_t start : starts) {
      for (const size_t len : lens) {
        if (start + len > n) continue;
        uint64_t expected = 0;
        for (size_t i = start; i < start + len; ++i) expected += values[i];
        ASSERT_EQ(
            internal::SumBitPackedRangeScalar(packed.data(), start, len, w),
            expected)
            << "scalar w=" << w << " start=" << start << " len=" << len;
        test::ForEachIsaTier([&](IsaTier tier) {
          ASSERT_EQ(SumBitPackedRange(packed.data(), start, len, w), expected)
              << "tier=" << static_cast<int>(tier) << " w=" << w
              << " start=" << start << " len=" << len;
        });
      }
    }
  }
}

TEST(RunAggTest, SumBitPackedRangeAllMaxCrossesFlushBoundary) {
  // Width 25 at the all-ones value drives the fused kernel's u32
  // accumulator to its worst-case increment across several 64-iteration
  // flush blocks (16 * 64 values per block).
  const size_t n = 16 * 64 * 3 + 173;
  std::vector<uint64_t> values(n, LowBitsMask(25));
  AlignedBuffer packed(BitPackedBytes(n, 25) + 8);
  BitPack(values.data(), n, 25, packed.data());
  const uint64_t expected = LowBitsMask(25) * n;
  test::ForEachIsaTier([&](IsaTier tier) {
    ASSERT_EQ(SumBitPackedRange(packed.data(), 0, n, 25), expected)
        << "tier=" << static_cast<int>(tier);
  });
}

TEST(RunAggTest, SumBitPackedRangeLongNarrowInput) {
  // Narrow widths exercise the multishift path over many iterations.
  const size_t n = size_t{1} << 20;
  for (const int w : {5, 8}) {
    std::vector<uint64_t> values;
    const AlignedBuffer packed = PackRandom(n, w, 9000 + w, &values);
    uint64_t expected = 0;
    for (const uint64_t v : values) expected += v;
    test::ForEachIsaTier([&](IsaTier tier) {
      ASSERT_EQ(SumBitPackedRange(packed.data(), 0, n, w), expected)
          << "tier=" << static_cast<int>(tier) << " w=" << w;
    });
  }
}

TEST(RunAggTest, U64WrapsModulo64Bits) {
  // uint64 accumulation is defined to wrap; all tiers must wrap identically.
  const size_t n = 5;
  AlignedBuffer buf(n * 8);
  auto* v = buf.data_as<uint64_t>();
  for (size_t i = 0; i < n; ++i) v[i] = ~uint64_t{0} - i;
  const uint64_t expected = ReferenceSum(buf, n, 8);
  test::ForEachIsaTier([&](IsaTier) {
    ASSERT_EQ(HorizontalSumWords(buf.data(), n, 8), expected);
  });
}

}  // namespace
}  // namespace bipie
