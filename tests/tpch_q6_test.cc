#include "tpch/q6.h"

#include <gtest/gtest.h>

#include <vector>

#include "baseline/hash_agg.h"
#include "common/random.h"
#include "baseline/scalar_engine.h"

namespace bipie {
namespace {

LineitemOptions SmallOptions() {
  LineitemOptions options;
  options.num_rows = 60000;
  options.segment_rows = 16384;
  options.seed = 6;
  return options;
}

TEST(Q6Test, SelectivityIsLow) {
  Table t = MakeLineitemTable(SmallOptions());
  BIPieScan scan(t, MakeQ6Query(t));
  auto result = scan.Execute();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const double selectivity =
      static_cast<double>(scan.stats().rows_selected) /
      static_cast<double>(scan.stats().rows_scanned);
  // Year window ~1/7, discount 3/11, quantity 23/50 -> ~1.8%.
  EXPECT_GT(selectivity, 0.005);
  EXPECT_LT(selectivity, 0.05);
  // Low selectivity must route batches through gather selection.
  EXPECT_GT(scan.stats().selection.gather, 0u);
  EXPECT_EQ(scan.stats().selection.special_group, 0u);
}

TEST(Q6Test, MatchesOracleAndHashEngine) {
  Table t = MakeLineitemTable(SmallOptions());
  const QuerySpec query = MakeQ6Query(t);
  auto expected = ExecuteQueryNaive(t, query);
  auto got = RunQ6(t);
  auto hashed = ExecuteQueryHashAgg(t, query);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(hashed.ok());
  ASSERT_EQ(got.value().rows.size(), 1u);
  EXPECT_EQ(got.value().rows[0].sums, expected.value().rows[0].sums);
  EXPECT_EQ(hashed.value().rows[0].sums, expected.value().rows[0].sums);
  EXPECT_GT(Q6RevenueDollars(got.value()), 0.0);
}

TEST(Q6Test, ManualRevenueCrossCheck) {
  Table t = MakeLineitemTable(SmallOptions());
  auto got = RunQ6(t);
  ASSERT_TRUE(got.ok());
  // Recompute row by row from decoded columns.
  __int128 revenue = 0;
  uint64_t count = 0;
  for (size_t s = 0; s < t.num_segments(); ++s) {
    const Segment& seg = t.segment(s);
    const size_t n = seg.num_rows();
    std::vector<int64_t> ship(n), disc(n), qty(n), ext(n);
    seg.column(kColShipDate).DecodeInt64(0, n, ship.data());
    seg.column(kColDiscount).DecodeInt64(0, n, disc.data());
    seg.column(kColQuantity).DecodeInt64(0, n, qty.data());
    seg.column(kColExtendedPrice).DecodeInt64(0, n, ext.data());
    for (size_t i = 0; i < n; ++i) {
      if (ship[i] >= kQ6DateLo && ship[i] < kQ6DateHi && disc[i] >= 5 &&
          disc[i] <= 7 && qty[i] < 2400) {
        revenue += static_cast<__int128>(ext[i]) * disc[i];
        ++count;
      }
    }
  }
  EXPECT_EQ(got.value().rows[0].sums[0], static_cast<int64_t>(revenue));
  EXPECT_EQ(got.value().rows[0].count, count);
}

TEST(Q6Test, SegmentEliminationOnDateSortedData) {
  // When lineitem is (synthetically) sorted by shipdate, per-segment date
  // ranges are tight and the one-year window eliminates most segments.
  Table sorted({{"l_quantity", ColumnType::kInt64, EncodingChoice::kBitPacked},
                {"l_extendedprice", ColumnType::kInt64,
                 EncodingChoice::kBitPacked},
                {"l_discount", ColumnType::kInt64, EncodingChoice::kBitPacked},
                {"l_shipdate", ColumnType::kInt64,
                 EncodingChoice::kBitPacked}});
  TableAppender app(&sorted, 8192);
  Rng rng(60);
  const size_t rows = 80000;
  for (size_t i = 0; i < rows; ++i) {
    const int64_t day = static_cast<int64_t>(i * (kShipDateMax + 1) / rows);
    app.AppendRow({rng.NextInRange(100, 5000),
                   rng.NextInRange(90000, 10000000),
                   rng.NextInRange(0, 10), day});
  }
  app.Flush();
  QuerySpec query;
  query.aggregates = {AggregateSpec::Count()};
  query.filters.emplace_back("l_shipdate", CompareOp::kGe, kQ6DateLo);
  query.filters.emplace_back("l_shipdate", CompareOp::kLt, kQ6DateHi);
  BIPieScan scan(sorted, query);
  auto result = scan.Execute();
  ASSERT_TRUE(result.ok());
  EXPECT_GT(scan.stats().segments_eliminated, scan.stats().segments_scanned);
}

}  // namespace
}  // namespace bipie
