// Byte-planar (ByteSlice) codec and column tests (DESIGN.md §16): plane
// math, pack/assemble round-trips, builder integration, save/load through
// both table formats, and the untrusted-data boundary — a mutated byte
// plane must fail validation with a structured error, never crash.
#include "encoding/byteslice.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/bits.h"
#include "common/random.h"
#include "core/scan.h"
#include "storage/column_builder.h"
#include "storage/table.h"
#include "storage/table_io.h"
#include "tests/test_util.h"

namespace bipie {
namespace {

TEST(ByteSliceMathTest, PlanesAndPadBits) {
  EXPECT_EQ(ByteSlicePlanes(1), 1);
  EXPECT_EQ(ByteSlicePlanes(8), 1);
  EXPECT_EQ(ByteSlicePlanes(9), 2);
  EXPECT_EQ(ByteSlicePlanes(16), 2);
  EXPECT_EQ(ByteSlicePlanes(17), 3);
  EXPECT_EQ(ByteSlicePlanes(25), 4);
  EXPECT_EQ(ByteSlicePlanes(64), 8);
  EXPECT_EQ(ByteSlicePadBits(8), 0);
  EXPECT_EQ(ByteSlicePadBits(9), 7);
  EXPECT_EQ(ByteSlicePadBits(12), 4);
  EXPECT_EQ(ByteSlicePadBits(64), 0);
  EXPECT_EQ(ByteSliceBytes(100, 9), 200u);
  EXPECT_EQ(ByteSliceBytes(7, 17), 21u);
}

TEST(ByteSliceMathTest, ShiftPreservesOrderAndPadIsZero) {
  // The padded comparison domain must decide exactly like the offsets.
  for (int w : {1, 5, 9, 12, 17, 25, 33}) {
    const uint64_t mask = LowBitsMask(w);
    Rng rng(100 + w);
    for (int i = 0; i < 200; ++i) {
      const uint64_t a = rng.Next() & mask;
      const uint64_t b = rng.Next() & mask;
      EXPECT_EQ(a < b, ByteSliceShift(a, w) < ByteSliceShift(b, w));
      EXPECT_EQ(a == b, ByteSliceShift(a, w) == ByteSliceShift(b, w));
      EXPECT_EQ(ByteSliceShift(a, w) & LowBitsMask(ByteSlicePadBits(w)), 0u);
    }
  }
}

// Pack -> assemble round-trips exactly for every width class, at windows
// that are not multiples of any SIMD block, from unaligned starts.
class ByteSliceRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ByteSliceRoundTrip, PackAssembleWindowed) {
  const int w = GetParam();
  const size_t n = 1013;  // prime: never a lane multiple
  auto values = test::RandomPackedValues(n, w, 17 * w + 3);
  AlignedBuffer planes(ByteSliceBytes(n, w));
  ByteSlicePack(values.data(), n, w, planes.data());

  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(ByteSliceAssembleOne(planes.data(), n, w, i), values[i])
        << "w=" << w << " i=" << i;
  }
  const int word = SmallestWordBytes(w);
  for (size_t start : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                       size_t{997}}) {
    const size_t m = n - start;
    AlignedBuffer out(m * static_cast<size_t>(word));
    ByteSliceAssemble(planes.data(), n, w, start, m, out.data(), word);
    for (size_t i = 0; i < m; ++i) {
      uint64_t got = 0;
      std::memcpy(&got, out.data() + i * static_cast<size_t>(word), word);
      ASSERT_EQ(got, values[start + i]) << "w=" << w << " start=" << start;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBitWidths, ByteSliceRoundTrip,
                         ::testing::Range(1, 65));

TEST(ByteSliceColumnTest, BuilderRoundTrip) {
  ColumnBuilder b({"c", ColumnType::kInt64, EncodingChoice::kByteSliced});
  std::vector<int64_t> v;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    v.push_back(rng.NextInRange(-4000, 4'000'000));  // 23-bit spread
  }
  for (int64_t x : v) b.AppendInt64(x);
  EncodedColumn col = b.Finish();
  EXPECT_EQ(col.encoding(), Encoding::kByteSliced);
  EXPECT_EQ(col.base(), col.meta().min);
  EXPECT_EQ(ByteSlicePlanes(col.bit_width()), 3);
  EXPECT_TRUE(col.Validate().ok());
  std::vector<int64_t> out(v.size());
  col.DecodeInt64(0, v.size(), out.data());
  EXPECT_EQ(out, v);
}

TEST(ByteSliceColumnTest, SinglePlaneAndConstant) {
  // w <= 8 collapses to one plane; a constant column has spread 0 -> w = 1.
  for (const int64_t hi : {int64_t{0}, int64_t{200}}) {
    ColumnBuilder b({"c", ColumnType::kInt64, EncodingChoice::kByteSliced});
    std::vector<int64_t> v;
    Rng rng(10);
    for (int i = 0; i < 700; ++i) v.push_back(rng.NextInRange(0, hi));
    for (int64_t x : v) b.AppendInt64(x);
    EncodedColumn col = b.Finish();
    EXPECT_EQ(col.encoding(), Encoding::kByteSliced);
    EXPECT_EQ(ByteSlicePlanes(col.bit_width()), 1);
    EXPECT_TRUE(col.Validate().ok());
    std::vector<int64_t> out(v.size());
    col.DecodeInt64(0, v.size(), out.data());
    EXPECT_EQ(out, v);
  }
}

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

// Two segments of byteslice data next to other encodings, wide enough
// (20-bit spread -> 3 planes) that the plane region dominates the file.
Table MakeByteSliceTable() {
  Table table({{"sliced", ColumnType::kInt64, EncodingChoice::kByteSliced},
               {"packed", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 256);
  Rng rng(31);
  for (size_t i = 0; i < 500; ++i) {
    app.AppendRow(
        {rng.NextInRange(-1000, (int64_t{1} << 20)), rng.NextInRange(0, 99)},
        {"", ""});
  }
  app.Flush();
  return table;
}

QuerySpec MakeByteSliceQuery() {
  QuerySpec query;
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("packed")};
  query.filters.emplace_back("sliced", CompareOp::kLt, int64_t{1} << 18);
  return query;
}

TEST(ByteSliceColumnTest, SaveLoadBothFormats) {
  const Table table = MakeByteSliceTable();
  const QuerySpec query = MakeByteSliceQuery();
  auto expected = ExecuteQuery(table, query);
  ASSERT_TRUE(expected.ok());
  for (int version : {1, 2}) {
    const std::string path = TempPath("byteslice_roundtrip.bipie");
    SaveOptions save;
    save.format_version = version;
    ASSERT_TRUE(SaveTable(table, path, save).ok());
    auto loaded = LoadTable(path);
    ASSERT_TRUE(loaded.ok()) << "v" << version << ": "
                             << loaded.status().ToString();
    EXPECT_EQ(loaded.value().segment(0).column(0).encoding(),
              Encoding::kByteSliced);
    auto got = ExecuteQuery(loaded.value(), query);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got.value().rows[0].count, expected.value().rows[0].count);
    EXPECT_EQ(got.value().rows[0].sums, expected.value().rows[0].sums);
    std::remove(path.c_str());
  }
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::vector<uint8_t> bytes(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  EXPECT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
  return bytes;
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

bool IsStructuredLoadError(const Status& st) {
  switch (st.code()) {
    case StatusCode::kDataLoss:
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotSupported:
    case StatusCode::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

// Every single-byte flip of a v1 file (no checksums — deep validation is
// the only line of defence) either fails with a structured error or loads
// a table that scans cleanly through the plane kernels. The byteslice
// invariants (pad bits zero, offsets within spread) must catch at least
// some of the flips landing in the plane region as kDataLoss.
TEST(ByteSliceColumnTest, CorruptionSweepV1) {
  const Table table = MakeByteSliceTable();
  const std::string path = TempPath("byteslice_corrupt.bipie");
  SaveOptions save;
  save.format_version = 1;
  ASSERT_TRUE(SaveTable(table, path, save).ok());
  const std::vector<uint8_t> golden = ReadAll(path);
  const QuerySpec query = MakeByteSliceQuery();

  size_t data_loss = 0;
  std::vector<uint8_t> mutant = golden;
  for (size_t i = 0; i < golden.size(); ++i) {
    for (uint8_t flip : {uint8_t{0x01}, uint8_t{0xFF}}) {
      mutant[i] = golden[i] ^ flip;
      WriteAll(path, mutant);
      auto loaded = LoadTable(path);
      if (!loaded.ok()) {
        ASSERT_TRUE(IsStructuredLoadError(loaded.status()))
            << "byte " << i << ": " << loaded.status().ToString();
        if (loaded.status().code() == StatusCode::kDataLoss) ++data_loss;
        continue;
      }
      auto result = ExecuteQuery(loaded.value(), query);
      if (!result.ok()) {
        ASSERT_NE(result.status().code(), StatusCode::kInternal)
            << "byte " << i << ": " << result.status().ToString();
      }
    }
    mutant[i] = golden[i];
  }
  EXPECT_GT(data_loss, 0u);

  // Truncation sweep: every prefix must fail structurally (or load, for
  // prefixes that happen to end on a whole v1 table).
  for (size_t len = 0; len < golden.size(); len += 7) {
    WriteAll(path, std::vector<uint8_t>(golden.begin(),
                                        golden.begin() + static_cast<long>(len)));
    auto loaded = LoadTable(path);
    if (!loaded.ok()) {
      ASSERT_TRUE(IsStructuredLoadError(loaded.status()))
          << "truncation " << len << ": " << loaded.status().ToString();
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bipie
