#include "vector/special_group.h"

#include <gtest/gtest.h>

#include <vector>

#include "test_util.h"

namespace bipie {
namespace {

TEST(SpecialGroupTest, MatchesScalarAcrossTiers) {
  const size_t n = 4099;
  auto groups = test::RandomGroups(n, 6, 11);
  for (double selectivity : {0.0, 0.1, 0.5, 0.98, 1.0}) {
    auto sel = MakeSelectionBytes(n, selectivity, 22);
    std::vector<uint8_t> expected(n);
    internal::ApplySpecialGroupScalar(groups.data(), sel.data(), n, 6,
                                      expected.data());
    test::ForEachIsaTier([&](IsaTier tier) {
      std::vector<uint8_t> out(n);
      ApplySpecialGroup(groups.data(), sel.data(), n, 6, out.data());
      ASSERT_EQ(out, expected)
          << "sel=" << selectivity << " tier=" << IsaTierName(tier);
    });
  }
}

TEST(SpecialGroupTest, SelectedRowsKeepTheirGroup) {
  const size_t n = 100;
  auto groups = test::RandomGroups(n, 4, 5);
  auto sel = MakeSelectionBytes(n, 0.5, 6);
  std::vector<uint8_t> out(n);
  ApplySpecialGroup(groups.data(), sel.data(), n, 4, out.data());
  for (size_t i = 0; i < n; ++i) {
    if (sel[i]) {
      EXPECT_EQ(out[i], groups.data()[i]);
    } else {
      EXPECT_EQ(out[i], 4);
    }
  }
}

TEST(SpecialGroupTest, InPlaceOperation) {
  const size_t n = 300;
  auto groups = test::RandomGroups(n, 5, 7);
  auto sel = MakeSelectionBytes(n, 0.7, 8);
  std::vector<uint8_t> expected(n);
  internal::ApplySpecialGroupScalar(groups.data(), sel.data(), n, 5,
                                    expected.data());
  ApplySpecialGroup(groups.data(), sel.data(), n, 5, groups.data());
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(groups.data()[i], expected[i]);
}

TEST(SpecialGroupTest, SpecialIdCanBe255) {
  const size_t n = 40;
  auto groups = test::RandomGroups(n, 255, 9);
  std::vector<uint8_t> sel(n, 0x00);
  std::vector<uint8_t> out(n);
  ApplySpecialGroup(groups.data(), sel.data(), n, 255, out.data());
  for (uint8_t g : out) EXPECT_EQ(g, 255);
}

}  // namespace
}  // namespace bipie
