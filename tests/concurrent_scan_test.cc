// Integration tests for morsel-driven scan execution: concurrent queries on
// the shared pool diffed against the hash-aggregation oracle (the TSan
// preset runs this as the data-race stress), cancellation invariants (a
// cancelled query returns kCancelled, never a partial result), morsel-split
// determinism, and the inline path's largest-first work ordering.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "baseline/hash_agg.h"
#include "common/random.h"
#include "core/scan.h"
#include "tests/test_util.h"
#include "exec/query_context.h"
#include "storage/table.h"

namespace bipie {
namespace {

// A grouped multi-encoding table: dictionary group column plus bit-packed
// value columns, sized to span several segments.
Table MakeGroupedTable(size_t rows, size_t segment_rows, uint64_t seed) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"y", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"f", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, segment_rows);
  Rng rng(seed);
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({static_cast<int64_t>(rng.NextBounded(9)),
                   rng.NextInRange(0, 20000), rng.NextInRange(0, 500),
                   rng.NextInRange(0, 99)});
  }
  app.Flush();
  return table;
}

QuerySpec MakeGroupedQuery() {
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("x"),
                      AggregateSpec::Min("y"), AggregateSpec::Max("x")};
  query.filters.emplace_back("f", CompareOp::kLt, int64_t{70});
  return query;
}

// Q6-shaped: no group-by, conjunctive range filter, one sum.
QuerySpec MakeUngroupedQuery() {
  QuerySpec query;
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("y")};
  query.filters.push_back(
      ColumnPredicate::Between("x", int64_t{2000}, int64_t{4000}));
  query.filters.emplace_back("f", CompareOp::kGt, int64_t{20});
  return query;
}

void ExpectSameResults(const QueryResult& got, const QueryResult& expected,
                       const std::string& label) {
  ASSERT_EQ(got.rows.size(), expected.rows.size()) << label;
  for (size_t r = 0; r < got.rows.size(); ++r) {
    ASSERT_EQ(got.rows[r].group, expected.rows[r].group) << label << " row "
                                                         << r;
    ASSERT_EQ(got.rows[r].count, expected.rows[r].count) << label << " row "
                                                         << r;
    ASSERT_EQ(got.rows[r].sums, expected.rows[r].sums) << label << " row "
                                                       << r;
  }
}

TEST(ConcurrentScanTest, PooledScanMatchesOracle) {
  Table table = MakeGroupedTable(50000, 2048, 71);
  QuerySpec query = MakeGroupedQuery();
  auto oracle = ExecuteQueryHashAgg(table, query);
  ASSERT_TRUE(oracle.ok());

  ScanOptions options;
  options.num_threads = 0;  // shared pool
  auto got = test::ExecuteChecked(table, query, options);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ExpectSameResults(got.value(), oracle.value(), "pooled");
}

TEST(ConcurrentScanTest, MorselSplitIsResultInvariant) {
  // Forcing tiny morsels (one batch each) must not change any answer:
  // per-morsel processors merge through the same deterministic reduction.
  Table table = MakeGroupedTable(30000, 8192, 72);
  QuerySpec query = MakeGroupedQuery();
  auto inline_result = test::ExecuteChecked(table, query);
  ASSERT_TRUE(inline_result.ok());

  for (size_t morsel_rows : {size_t{4096}, size_t{8192}, size_t{100000}}) {
    ScanOptions options;
    options.num_threads = 0;
    options.morsel_rows = morsel_rows;
    BIPieScan scan(table, query, options);
    auto got = scan.Execute();
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    BIPIE_EXPECT_STATS_INVARIANTS(scan, query, table, &got.value());
    ExpectSameResults(got.value(), inline_result.value(),
                      "morsel_rows=" + std::to_string(morsel_rows));
    // Stats must describe the same scan regardless of the split.
    EXPECT_EQ(scan.stats().rows_scanned, table.num_rows());
    EXPECT_EQ(scan.stats().segments_scanned, table.num_segments());
  }
}

TEST(ConcurrentScanTest, EightWayConcurrentExecuteMatchesOracle) {
  // Eight client threads hammer the shared pool with scans over shared
  // tables — two tables, two query shapes, every scan diffed against the
  // oracle computed up front. TSan runs this as the race stress; any
  // cross-query state in the scheduler or scan shows up here.
  Table grouped = MakeGroupedTable(60000, 4096, 73);
  Table skinny = MakeGroupedTable(20000, 1024, 74);
  QuerySpec grouped_query = MakeGroupedQuery();
  QuerySpec ungrouped_query = MakeUngroupedQuery();

  auto grouped_oracle = ExecuteQueryHashAgg(grouped, grouped_query);
  auto skinny_oracle = ExecuteQueryHashAgg(skinny, ungrouped_query);
  ASSERT_TRUE(grouped_oracle.ok());
  ASSERT_TRUE(skinny_oracle.ok());

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        ScanOptions options;
        options.num_threads = 0;
        options.morsel_rows = (t % 2 == 0) ? 0 : 4096;
        const bool use_grouped = (t + i) % 2 == 0;
        const Table& table = use_grouped ? grouped : skinny;
        const QuerySpec& query = use_grouped ? grouped_query : ungrouped_query;
        const QueryResult& expected = use_grouped ? grouped_oracle.value()
                                                  : skinny_oracle.value();
        auto got = test::ExecuteChecked(table, query, options);
        if (!got.ok() || got.value().rows.size() != expected.rows.size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t r = 0; r < expected.rows.size(); ++r) {
          if (got.value().rows[r].group != expected.rows[r].group ||
              got.value().rows[r].count != expected.rows[r].count ||
              got.value().rows[r].sums != expected.rows[r].sums) {
            mismatches.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrentScanTest, PreCancelledQueryReturnsCancelled) {
  Table table = MakeGroupedTable(20000, 2048, 75);
  QuerySpec query = MakeGroupedQuery();
  for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    QueryContext context;
    context.Cancel();
    ScanOptions options;
    options.num_threads = threads;
    options.context = &context;
    auto got = test::ExecuteChecked(table, query, options);
    ASSERT_FALSE(got.ok()) << "threads=" << threads;
    EXPECT_EQ(got.status().code(), StatusCode::kCancelled)
        << "threads=" << threads;
  }
}

TEST(ConcurrentScanTest, MidScanCancellationNeverYieldsPartialResult) {
  Table table = MakeGroupedTable(40000, 2048, 76);
  QuerySpec query = MakeGroupedQuery();
  auto oracle = ExecuteQueryHashAgg(table, query);
  ASSERT_TRUE(oracle.ok());

  // Sweep the cancellation point across the scan: every outcome must be
  // either a clean kCancelled or the complete, exact answer — the scan may
  // finish before noticing a very late cancel, but must never return a
  // subset of the groups or partially accumulated sums.
  for (size_t threads : {size_t{0}, size_t{1}, size_t{3}}) {
    for (int64_t budget : {0, 1, 2, 5, 9, 17, 1000000}) {
      QueryContext context;
      context.CancelAfterChecks(budget);
      ScanOptions options;
      options.num_threads = threads;
      options.morsel_rows = 4096;
      options.context = &context;
      auto got = test::ExecuteChecked(table, query, options);
      const std::string label = "threads=" + std::to_string(threads) +
                                " budget=" + std::to_string(budget);
      if (got.ok()) {
        ExpectSameResults(got.value(), oracle.value(), label);
      } else {
        EXPECT_EQ(got.status().code(), StatusCode::kCancelled) << label;
      }
    }
  }
}

TEST(ConcurrentScanTest, ExpiredDeadlineCancelsScan) {
  Table table = MakeGroupedTable(20000, 2048, 77);
  QueryContext context;
  context.set_deadline(std::chrono::steady_clock::now() -
                       std::chrono::milliseconds(1));
  ScanOptions options;
  options.num_threads = 0;
  options.context = &context;
  auto got = test::ExecuteChecked(table, MakeGroupedQuery(), options);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
}

TEST(ConcurrentScanTest, CancelledHashFallbackReturnsCancelled) {
  // >255 combined groups forces the hash-engine fallback; a pre-cancelled
  // context must still short-circuit to kCancelled, not a full hash result.
  Table table({{"g1", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"g2", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  Rng rng(78);
  for (int i = 0; i < 8000; ++i) {
    app.AppendRow({rng.NextInRange(0, 39), rng.NextInRange(0, 19),
                   rng.NextInRange(0, 1000)});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g1", "g2"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("x")};

  QueryContext context;
  context.Cancel();
  ScanOptions options;
  options.num_threads = 0;
  options.context = &context;
  auto got = test::ExecuteChecked(table, query, options);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kCancelled);
}

TEST(ScanWorkOrderTest, LargestFirstOrderSortsBySizeWithStableTies) {
  const std::vector<size_t> sizes = {5, 100, 7, 100, 0, 64};
  const std::vector<size_t> order = internal_scan::LargestFirstOrder(sizes);
  EXPECT_EQ(order, (std::vector<size_t>{1, 3, 5, 2, 0, 4}));
  EXPECT_TRUE(internal_scan::LargestFirstOrder({}).empty());
}

TEST(ScanWorkOrderTest, PathologicalSegmentStaysExactOnEveryPath) {
  // One huge segment among many small ones — the shape that stalls a static
  // strided partition. The inline path drains it first; the pool splits it
  // into morsels; the legacy path gets it off the shared cursor. All three
  // must agree with the oracle exactly.
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"x", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"f", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  Rng rng(79);
  {
    TableAppender big(&table, 1 << 17);
    for (int i = 0; i < 90000; ++i) {
      big.AppendRow({static_cast<int64_t>(rng.NextBounded(6)),
                     rng.NextInRange(0, 9000), rng.NextInRange(0, 99)});
    }
    big.Flush();  // one ~90K-row segment
  }
  {
    TableAppender small(&table, 512);
    for (int i = 0; i < 4000; ++i) {
      small.AppendRow({static_cast<int64_t>(rng.NextBounded(6)),
                       rng.NextInRange(0, 9000), rng.NextInRange(0, 99)});
    }
    small.Flush();  // ~8 tiny segments
  }
  ASSERT_GE(table.num_segments(), 5u);
  ASSERT_GT(table.segment(0).num_rows(), 16 * table.segment(2).num_rows());

  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("x")};
  query.filters.emplace_back("f", CompareOp::kLt, int64_t{60});
  auto oracle = ExecuteQueryHashAgg(table, query);
  ASSERT_TRUE(oracle.ok());

  for (size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    ScanOptions options;
    options.num_threads = threads;
    auto got = test::ExecuteChecked(table, query, options);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ExpectSameResults(got.value(), oracle.value(),
                      "threads=" + std::to_string(threads));
  }
}

}  // namespace
}  // namespace bipie
