// Randomized differential testing: generate random schemas, data, queries
// and strategy choices; the BIPie scan must agree exactly with the naive
// decode-everything oracle on every one of them.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/hash_agg.h"
#include "baseline/scalar_engine.h"
#include "common/random.h"
#include "core/scan.h"

namespace bipie {
namespace {

struct RandomCase {
  Table table;
  QuerySpec query;
  std::string description;

  explicit RandomCase(uint64_t seed) : table(MakeSchema(seed)) {
    Rng rng(seed * 7919 + 1);
    const size_t rows = 1000 + rng.NextBounded(12000);
    const size_t segment_rows = 512 + rng.NextBounded(8192);
    TableAppender app(&table, segment_rows);
    const int group_card = 2 + static_cast<int>(rng.NextBounded(9));
    const char* flags[10] = {"a", "b", "c", "d", "e",
                             "f", "g", "h", "i", "j"};
    for (size_t i = 0; i < rows; ++i) {
      std::vector<int64_t> ints(table.num_columns(), 0);
      std::vector<std::string> strings(table.num_columns());
      for (size_t c = 0; c < table.num_columns(); ++c) {
        if (table.schema()[c].type == ColumnType::kString) {
          strings[c] = flags[rng.NextBounded(group_card)];
        } else if (table.schema()[c].name == "g2") {
          ints[c] = rng.NextInRange(5, 5 + 3);  // small domain for grouping
        } else {
          // Mix of ranges: narrow non-negative, signed, wide.
          switch (c % 3) {
            case 0: ints[c] = rng.NextInRange(0, 63); break;
            case 1: ints[c] = rng.NextInRange(-4000, 4000); break;
            default: ints[c] = rng.NextInRange(0, 1 << 22); break;
          }
        }
      }
      app.AppendRow(ints, strings);
    }
    app.Flush();

    // Random deletions in ~half the cases.
    if (rng.NextBernoulli(0.5)) {
      const size_t dels = rng.NextBounded(rows / 10 + 1);
      for (size_t d = 0; d < dels; ++d) {
        const size_t seg = rng.NextBounded(table.num_segments());
        table.mutable_segment(seg).DeleteRow(
            rng.NextBounded(table.segment(seg).num_rows()));
      }
      description += " deletions";
    }

    // Group by 0..2 columns.
    const int ngroup = static_cast<int>(rng.NextBounded(3));
    if (ngroup >= 1) query.group_by.push_back("g1");
    if (ngroup >= 2) query.group_by.push_back("g2");
    description += " groupby=" + std::to_string(ngroup);

    // 1..5 aggregates of random kinds.
    query.aggregates.push_back(AggregateSpec::Count());
    const int naggs = 1 + static_cast<int>(rng.NextBounded(4));
    const char* value_cols[3] = {"v0", "v1", "v2"};
    for (int a = 0; a < naggs; ++a) {
      switch (rng.NextBounded(5)) {
        case 0:
          query.aggregates.push_back(
              AggregateSpec::Sum(value_cols[rng.NextBounded(3)]));
          break;
        case 1:
          query.aggregates.push_back(
              AggregateSpec::Avg(value_cols[rng.NextBounded(3)]));
          break;
        case 3:
          query.aggregates.push_back(
              AggregateSpec::Min(value_cols[rng.NextBounded(3)]));
          break;
        case 4:
          query.aggregates.push_back(
              AggregateSpec::Max(value_cols[rng.NextBounded(3)]));
          break;
        default: {
          const int c0 = table.FindColumn(value_cols[rng.NextBounded(3)]);
          const int c1 = table.FindColumn(value_cols[rng.NextBounded(3)]);
          query.aggregates.push_back(AggregateSpec::SumExpr(Expr::Add(
              Expr::Mul(Expr::Column(c0), Expr::Constant(
                                              1 + rng.NextBounded(50))),
              Expr::Column(c1))));
          break;
        }
      }
    }
    description += " aggs=" + std::to_string(naggs);

    // 0..2 filters.
    const int nfilters = static_cast<int>(rng.NextBounded(3));
    const CompareOp ops[6] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                              CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
    for (int fidx = 0; fidx < nfilters; ++fidx) {
      query.filters.emplace_back(value_cols[rng.NextBounded(3)],
                                 ops[rng.NextBounded(6)],
                                 rng.NextInRange(-5000, 5000));
    }
    description += " filters=" + std::to_string(nfilters);
  }

  static Schema MakeSchema(uint64_t seed) {
    Rng rng(seed);
    Schema schema;
    schema.push_back({"g1", rng.NextBernoulli(0.5) ? ColumnType::kString
                                                   : ColumnType::kInt64,
                      EncodingChoice::kAuto});
    if (schema[0].type == ColumnType::kInt64) {
      schema[0].encoding = EncodingChoice::kDictionary;
    }
    schema.push_back({"g2", ColumnType::kInt64,
                      rng.NextBernoulli(0.3) ? EncodingChoice::kRle
                                             : EncodingChoice::kDictionary});
    const EncodingChoice encodings[3] = {EncodingChoice::kBitPacked,
                                         EncodingChoice::kAuto,
                                         EncodingChoice::kDictionary};
    schema.push_back({"v0", ColumnType::kInt64, EncodingChoice::kBitPacked});
    schema.push_back(
        {"v1", ColumnType::kInt64, encodings[rng.NextBounded(3)]});
    schema.push_back(
        {"v2", ColumnType::kInt64, encodings[rng.NextBounded(3)]});
    return schema;
  }
};

void ExpectAgreement(const QueryResult& got, const QueryResult& expected,
                     const std::string& context) {
  ASSERT_EQ(got.rows.size(), expected.rows.size()) << context;
  for (size_t r = 0; r < got.rows.size(); ++r) {
    ASSERT_EQ(got.rows[r].group, expected.rows[r].group) << context;
    ASSERT_EQ(got.rows[r].count, expected.rows[r].count) << context;
    ASSERT_EQ(got.rows[r].sums, expected.rows[r].sums) << context;
  }
}

class DifferentialProperty : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialProperty, BIPieMatchesOracleOnRandomWorkloads) {
  const uint64_t seed = 1000 + GetParam();
  RandomCase c(seed);
  auto expected = ExecuteQueryNaive(c.table, c.query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Adaptive run.
  auto adaptive = ExecuteQuery(c.table, c.query);
  ASSERT_TRUE(adaptive.ok())
      << adaptive.status().ToString() << " case:" << c.description;
  ExpectAgreement(adaptive.value(), expected.value(),
                  "adaptive seed=" + std::to_string(seed) + c.description);

  // Hash baseline.
  auto hashed = ExecuteQueryHashAgg(c.table, c.query);
  ASSERT_TRUE(hashed.ok());
  ExpectAgreement(hashed.value(), expected.value(),
                  "hash seed=" + std::to_string(seed));

  // Two pseudo-random forced combinations (skipping infeasible ones).
  Rng rng(seed + 5);
  const SelectionStrategy sels[3] = {SelectionStrategy::kGather,
                                     SelectionStrategy::kCompact,
                                     SelectionStrategy::kSpecialGroup};
  const AggregationStrategy aggs[4] = {
      AggregationStrategy::kScalar, AggregationStrategy::kInRegister,
      AggregationStrategy::kSortBased, AggregationStrategy::kMultiAggregate};
  for (int k = 0; k < 2; ++k) {
    ScanOptions options;
    options.overrides.selection = sels[rng.NextBounded(3)];
    options.overrides.aggregation = aggs[rng.NextBounded(4)];
    auto forced = ExecuteQuery(c.table, c.query, options);
    if (!forced.ok()) {
      // Infeasible strategy for this shape — must be a clean rejection.
      ASSERT_EQ(forced.status().code(), StatusCode::kNotSupported)
          << forced.status().ToString();
      continue;
    }
    ExpectAgreement(
        forced.value(), expected.value(),
        std::string("forced ") +
            SelectionStrategyName(*options.overrides.selection) + "+" +
            AggregationStrategyName(*options.overrides.aggregation) +
            " seed=" + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(FortyRandomWorkloads, DifferentialProperty,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace bipie
