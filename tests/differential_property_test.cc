// Randomized differential testing: generate random schemas, data, queries
// and strategy choices; the BIPie scan must agree exactly with the naive
// decode-everything oracle on every one of them.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "baseline/hash_agg.h"
#include "baseline/scalar_engine.h"
#include "common/random.h"
#include "core/scan.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"
#include "storage/column_builder.h"

namespace bipie {
namespace {

struct RandomCase {
  Table table;
  QuerySpec query;
  std::string description;

  explicit RandomCase(uint64_t seed) : table(MakeSchema(seed)) {
    Rng rng(seed * 7919 + 1);
    const size_t rows = 1000 + rng.NextBounded(12000);
    const size_t segment_rows = 512 + rng.NextBounded(8192);
    TableAppender app(&table, segment_rows);
    const int group_card = 2 + static_cast<int>(rng.NextBounded(9));
    const char* flags[10] = {"a", "b", "c", "d", "e",
                             "f", "g", "h", "i", "j"};
    for (size_t i = 0; i < rows; ++i) {
      std::vector<int64_t> ints(table.num_columns(), 0);
      std::vector<std::string> strings(table.num_columns());
      for (size_t c = 0; c < table.num_columns(); ++c) {
        if (table.schema()[c].type == ColumnType::kString) {
          strings[c] = flags[rng.NextBounded(group_card)];
        } else if (table.schema()[c].name == "g2") {
          ints[c] = rng.NextInRange(5, 5 + 3);  // small domain for grouping
        } else {
          // Mix of ranges: narrow non-negative, signed, wide.
          switch (c % 3) {
            case 0: ints[c] = rng.NextInRange(0, 63); break;
            case 1: ints[c] = rng.NextInRange(-4000, 4000); break;
            default: ints[c] = rng.NextInRange(0, 1 << 22); break;
          }
        }
      }
      app.AppendRow(ints, strings);
    }
    app.Flush();

    // Random deletions in ~half the cases.
    if (rng.NextBernoulli(0.5)) {
      const size_t dels = rng.NextBounded(rows / 10 + 1);
      for (size_t d = 0; d < dels; ++d) {
        const size_t seg = rng.NextBounded(table.num_segments());
        table.mutable_segment(seg).DeleteRow(
            rng.NextBounded(table.segment(seg).num_rows()));
      }
      description += " deletions";
    }

    // Group by 0..2 columns.
    const int ngroup = static_cast<int>(rng.NextBounded(3));
    if (ngroup >= 1) query.group_by.push_back("g1");
    if (ngroup >= 2) query.group_by.push_back("g2");
    description += " groupby=" + std::to_string(ngroup);

    // 1..5 aggregates of random kinds.
    query.aggregates.push_back(AggregateSpec::Count());
    const int naggs = 1 + static_cast<int>(rng.NextBounded(4));
    const char* value_cols[3] = {"v0", "v1", "v2"};
    for (int a = 0; a < naggs; ++a) {
      switch (rng.NextBounded(5)) {
        case 0:
          query.aggregates.push_back(
              AggregateSpec::Sum(value_cols[rng.NextBounded(3)]));
          break;
        case 1:
          query.aggregates.push_back(
              AggregateSpec::Avg(value_cols[rng.NextBounded(3)]));
          break;
        case 3:
          query.aggregates.push_back(
              AggregateSpec::Min(value_cols[rng.NextBounded(3)]));
          break;
        case 4:
          query.aggregates.push_back(
              AggregateSpec::Max(value_cols[rng.NextBounded(3)]));
          break;
        default: {
          const int c0 = table.FindColumn(value_cols[rng.NextBounded(3)]);
          const int c1 = table.FindColumn(value_cols[rng.NextBounded(3)]);
          query.aggregates.push_back(AggregateSpec::SumExpr(Expr::Add(
              Expr::Mul(Expr::Column(c0), Expr::Constant(
                                              1 + rng.NextBounded(50))),
              Expr::Column(c1))));
          break;
        }
      }
    }
    description += " aggs=" + std::to_string(naggs);

    // 0..2 filters.
    const int nfilters = static_cast<int>(rng.NextBounded(3));
    const CompareOp ops[6] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                              CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
    for (int fidx = 0; fidx < nfilters; ++fidx) {
      query.filters.emplace_back(value_cols[rng.NextBounded(3)],
                                 ops[rng.NextBounded(6)],
                                 rng.NextInRange(-5000, 5000));
    }
    description += " filters=" + std::to_string(nfilters);
  }

  static Schema MakeSchema(uint64_t seed) {
    Rng rng(seed);
    Schema schema;
    schema.push_back({"g1", rng.NextBernoulli(0.5) ? ColumnType::kString
                                                   : ColumnType::kInt64,
                      EncodingChoice::kAuto});
    if (schema[0].type == ColumnType::kInt64) {
      schema[0].encoding = EncodingChoice::kDictionary;
    }
    schema.push_back({"g2", ColumnType::kInt64,
                      rng.NextBernoulli(0.3) ? EncodingChoice::kRle
                                             : EncodingChoice::kDictionary});
    const EncodingChoice encodings[3] = {EncodingChoice::kBitPacked,
                                         EncodingChoice::kAuto,
                                         EncodingChoice::kDictionary};
    schema.push_back({"v0", ColumnType::kInt64, EncodingChoice::kBitPacked});
    schema.push_back(
        {"v1", ColumnType::kInt64, encodings[rng.NextBounded(3)]});
    schema.push_back(
        {"v2", ColumnType::kInt64, encodings[rng.NextBounded(3)]});
    return schema;
  }
};

void ExpectAgreement(const QueryResult& got, const QueryResult& expected,
                     const std::string& context) {
  ASSERT_EQ(got.rows.size(), expected.rows.size()) << context;
  for (size_t r = 0; r < got.rows.size(); ++r) {
    ASSERT_EQ(got.rows[r].group, expected.rows[r].group) << context;
    ASSERT_EQ(got.rows[r].count, expected.rows[r].count) << context;
    ASSERT_EQ(got.rows[r].sums, expected.rows[r].sums) << context;
  }
}

class DifferentialProperty : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialProperty, BIPieMatchesOracleOnRandomWorkloads) {
  const uint64_t seed = 1000 + GetParam();
  RandomCase c(seed);
  auto expected = ExecuteQueryNaive(c.table, c.query);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();

  // Adaptive run.
  auto adaptive = ExecuteQuery(c.table, c.query);
  ASSERT_TRUE(adaptive.ok())
      << adaptive.status().ToString() << " case:" << c.description;
  ExpectAgreement(adaptive.value(), expected.value(),
                  "adaptive seed=" + std::to_string(seed) + c.description);

  // Hash baseline.
  auto hashed = ExecuteQueryHashAgg(c.table, c.query);
  ASSERT_TRUE(hashed.ok());
  ExpectAgreement(hashed.value(), expected.value(),
                  "hash seed=" + std::to_string(seed));

  // Cost-model runs (DESIGN.md §17): the model only redirects among
  // correct strategies, so it can never be wrong — only slower.
  for (const CostModelMode mode :
       {CostModelMode::kOn, CostModelMode::kAdaptive}) {
    ScanOptions options;
    options.overrides.cost_model = mode;
    auto modeled = ExecuteQuery(c.table, c.query, options);
    ASSERT_TRUE(modeled.ok())
        << modeled.status().ToString() << " case:" << c.description;
    ExpectAgreement(modeled.value(), expected.value(),
                    std::string("cost_model=") + CostModelModeName(mode) +
                        " seed=" + std::to_string(seed) + c.description);
  }

  // Two pseudo-random forced combinations (skipping infeasible ones).
  Rng rng(seed + 5);
  const SelectionStrategy sels[3] = {SelectionStrategy::kGather,
                                     SelectionStrategy::kCompact,
                                     SelectionStrategy::kSpecialGroup};
  const AggregationStrategy aggs[4] = {
      AggregationStrategy::kScalar, AggregationStrategy::kInRegister,
      AggregationStrategy::kSortBased, AggregationStrategy::kMultiAggregate};
  for (int k = 0; k < 2; ++k) {
    ScanOptions options;
    options.overrides.selection = sels[rng.NextBounded(3)];
    options.overrides.aggregation = aggs[rng.NextBounded(4)];
    auto forced = ExecuteQuery(c.table, c.query, options);
    if (!forced.ok()) {
      // Infeasible strategy for this shape — must be a clean rejection.
      ASSERT_EQ(forced.status().code(), StatusCode::kNotSupported)
          << forced.status().ToString();
      continue;
    }
    ExpectAgreement(
        forced.value(), expected.value(),
        std::string("forced ") +
            SelectionStrategyName(*options.overrides.selection) + "+" +
            AggregationStrategyName(*options.overrides.aggregation) +
            " seed=" + std::to_string(seed));
  }
}

INSTANTIATE_TEST_SUITE_P(FortyRandomWorkloads, DifferentialProperty,
                         ::testing::Range(0, 40));

// Advisor property (DESIGN.md §17): whatever distribution the values have,
// the advised encoding must (a) be the predicted-cost argmin among the
// feasible candidates and (b) round-trip the values losslessly when the
// column is actually built with it.
class AdvisorProperty : public ::testing::TestWithParam<int> {};

TEST_P(AdvisorProperty, AdvisedEncodingIsCheapestAndLossless) {
  const uint64_t seed = 7000 + GetParam();
  Rng rng(seed);
  std::vector<int64_t> values;
  const size_t n = 500 + rng.NextBounded(6000);
  const int shape = static_cast<int>(rng.NextBounded(5));
  values.reserve(n);
  switch (shape) {
    case 0:  // narrow uniform
      for (size_t i = 0; i < n; ++i) values.push_back(rng.NextInRange(0, 100));
      break;
    case 1:  // wide sparse
      for (size_t i = 0; i < n; ++i) {
        values.push_back(rng.NextInRange(0, int64_t{1} << 44));
      }
      break;
    case 2: {  // sorted runs of random length
      int64_t v = rng.NextInRange(-100, 100);
      while (values.size() < n) {
        const size_t run = 1 + rng.NextBounded(500);
        for (size_t r = 0; r < run && values.size() < n; ++r) {
          values.push_back(v);
        }
        v += 1 + rng.NextInRange(0, 3);
      }
      break;
    }
    case 3: {  // near-sequential ramp
      int64_t v = rng.NextInRange(-1000, 1000);
      for (size_t i = 0; i < n; ++i) {
        v += rng.NextInRange(0, 9);
        values.push_back(v);
      }
      break;
    }
    default:  // heavy skew with wide outliers
      for (size_t i = 0; i < n; ++i) {
        values.push_back(rng.NextBernoulli(0.9)
                             ? int64_t{7}
                             : rng.NextInRange(-50000, 50000));
      }
      break;
  }

  ColumnBuilder builder({"c", ColumnType::kInt64});
  builder.AppendInt64Bulk(values.data(), values.size());
  const cost::CalibrationProfile profile = cost::BuiltinProfile();
  const cost::CostModel model(profile);
  const EncodingAdvice advice = builder.Advise(model);
  ASSERT_EQ(advice.num_rows, values.size());

  // (a) chosen is the feasible-candidate cost argmin (bounded-factor bound
  // with factor 1 — ties broken by size then enum order).
  double best = -1.0;
  double chosen_cost = -1.0;
  for (const EncodingCandidate& cand : advice.candidates) {
    if (!cand.feasible) continue;
    EXPECT_GE(cand.scan_cycles_per_row, 0.0);
    if (best < 0.0 || cand.scan_cycles_per_row < best) {
      best = cand.scan_cycles_per_row;
    }
    if (cand.encoding == advice.chosen) {
      chosen_cost = cand.scan_cycles_per_row;
    }
  }
  ASSERT_GE(chosen_cost, 0.0) << "chosen encoding not among candidates";
  EXPECT_LE(chosen_cost, best + 1e-12)
      << "seed=" << seed << " shape=" << shape;

  // (b) building with the advised encoding reproduces the values exactly.
  EncodingChoice choice = EncodingChoice::kAuto;
  switch (advice.chosen) {
    case Encoding::kBitPacked: choice = EncodingChoice::kBitPacked; break;
    case Encoding::kDictionary: choice = EncodingChoice::kDictionary; break;
    case Encoding::kRle: choice = EncodingChoice::kRle; break;
    case Encoding::kDelta: choice = EncodingChoice::kDelta; break;
    case Encoding::kByteSliced: choice = EncodingChoice::kByteSliced; break;
  }
  ColumnBuilder encoder({"c", ColumnType::kInt64, choice});
  encoder.AppendInt64Bulk(values.data(), values.size());
  EncodedColumn col = encoder.Finish();
  ASSERT_EQ(col.encoding(), advice.chosen)
      << "seed=" << seed << " shape=" << shape;
  std::vector<int64_t> decoded(values.size());
  col.DecodeInt64(0, values.size(), decoded.data());
  EXPECT_EQ(decoded, values) << "seed=" << seed << " shape=" << shape;
}

INSTANTIATE_TEST_SUITE_P(TwentyFourRandomColumns, AdvisorProperty,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace bipie
