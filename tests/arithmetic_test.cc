#include "expr/arithmetic.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/random.h"

namespace bipie {
namespace {

TEST(ExprTest, LeafEvaluation) {
  std::vector<int64_t> col = {1, 2, 3};
  const int64_t* cols[1] = {col.data()};
  std::vector<int64_t> out(3);

  Expr::Column(0)->Evaluate(cols, 3, out.data());
  EXPECT_EQ(out, col);

  Expr::Constant(-7)->Evaluate(cols, 3, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{-7, -7, -7}));
}

TEST(ExprTest, BinaryOps) {
  std::vector<int64_t> a = {10, 20, 30};
  std::vector<int64_t> b = {1, 2, 3};
  const int64_t* cols[2] = {a.data(), b.data()};
  std::vector<int64_t> out(3);

  Expr::Add(Expr::Column(0), Expr::Column(1))->Evaluate(cols, 3, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{11, 22, 33}));

  Expr::Sub(Expr::Column(0), Expr::Column(1))->Evaluate(cols, 3, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{9, 18, 27}));

  Expr::Mul(Expr::Column(0), Expr::Column(1))->Evaluate(cols, 3, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{10, 40, 90}));
}

TEST(ExprTest, ConstantRhsFastPath) {
  std::vector<int64_t> a = {5, 6, 7};
  const int64_t* cols[1] = {a.data()};
  std::vector<int64_t> out(3);
  Expr::Mul(Expr::Column(0), Expr::Constant(100))
      ->Evaluate(cols, 3, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{500, 600, 700}));
}

TEST(ExprTest, ConstantLhs) {
  std::vector<int64_t> a = {5, 6, 7};
  const int64_t* cols[1] = {a.data()};
  std::vector<int64_t> out(3);
  Expr::Sub(Expr::Constant(100), Expr::Column(0))
      ->Evaluate(cols, 3, out.data());
  EXPECT_EQ(out, (std::vector<int64_t>{95, 94, 93}));
}

TEST(ExprTest, Q1ShapedNestedExpression) {
  // price * (100 - disc) * (100 + tax), the Q1 charge expression.
  std::vector<int64_t> price = {10000, 25000};
  std::vector<int64_t> disc = {5, 0};
  std::vector<int64_t> tax = {8, 2};
  const int64_t* cols[3] = {price.data(), disc.data(), tax.data()};
  ExprPtr charge =
      Expr::Mul(Expr::Mul(Expr::Column(0),
                          Expr::Sub(Expr::Constant(100), Expr::Column(1))),
                Expr::Add(Expr::Constant(100), Expr::Column(2)));
  std::vector<int64_t> out(2);
  charge->Evaluate(cols, 2, out.data());
  EXPECT_EQ(out[0], 10000 * 95 * 108);
  EXPECT_EQ(out[1], 25000 * 100 * 102);
}

TEST(ExprTest, FusedMulRangeFormsMatchUnfusedSemantics) {
  // The fused a * (c ± col) fast path must agree with manual evaluation
  // for every operand shape that can feed it.
  Rng rng(77);
  const size_t n = 512;
  std::vector<int64_t> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.NextInRange(-500, 500);
    b[i] = rng.NextInRange(-90, 90);
  }
  const int64_t* cols[2] = {a.data(), b.data()};
  struct Case {
    ExprPtr expr;
    std::function<int64_t(int64_t, int64_t)> direct;
  };
  const Case cases[] = {
      // column * (const - col): the Q1 discount factor.
      {Expr::Mul(Expr::Column(0),
                 Expr::Sub(Expr::Constant(100), Expr::Column(1))),
       [](int64_t x, int64_t y) { return x * (100 - y); }},
      // column * (const + col): the Q1 tax factor.
      {Expr::Mul(Expr::Column(0),
                 Expr::Add(Expr::Constant(7), Expr::Column(1))),
       [](int64_t x, int64_t y) { return x * (7 + y); }},
      // nested lhs * (const - col): lhs resolved through recursion first.
      {Expr::Mul(Expr::Add(Expr::Column(0), Expr::Column(1)),
                 Expr::Sub(Expr::Constant(-3), Expr::Column(1))),
       [](int64_t x, int64_t y) { return (x + y) * (-3 - y); }},
  };
  std::vector<int64_t> out(n);
  for (const Case& c : cases) {
    c.expr->Evaluate(cols, n, out.data());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], c.direct(a[i], b[i])) << i;
    }
  }
}

TEST(ExprTest, FusedFormConsumesCachedLhs) {
  // lhs found in an ExprCache must feed the fused loop directly.
  std::vector<int64_t> a = {10, 20}, b = {1, 2};
  const int64_t* cols[2] = {a.data(), b.data()};
  ExprPtr shared = Expr::Add(Expr::Column(0), Expr::Constant(5));
  ExprPtr fused =
      Expr::Mul(shared, Expr::Sub(Expr::Constant(100), Expr::Column(1)));
  std::vector<int64_t> shared_out(2), out(2);
  shared->Evaluate(cols, 2, shared_out.data());
  ExprCache cache;
  cache.Put(shared.get(), shared_out.data());
  fused->Evaluate(cols, 2, out.data(), &cache);
  EXPECT_EQ(out[0], 15 * 99);
  EXPECT_EQ(out[1], 25 * 98);
}

TEST(ExprTest, RandomizedAgainstDirectComputation) {
  Rng rng(12);
  const size_t n = 2000;
  std::vector<int64_t> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.NextInRange(-1000, 1000);
    b[i] = rng.NextInRange(-1000, 1000);
  }
  const int64_t* cols[2] = {a.data(), b.data()};
  ExprPtr e = Expr::Add(Expr::Mul(Expr::Column(0), Expr::Column(1)),
                        Expr::Sub(Expr::Column(0), Expr::Constant(3)));
  std::vector<int64_t> out(n);
  e->Evaluate(cols, n, out.data());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], a[i] * b[i] + (a[i] - 3));
  }
}

TEST(ExprTest, CollectColumnsDeduplicates) {
  ExprPtr e = Expr::Mul(Expr::Add(Expr::Column(2), Expr::Column(0)),
                        Expr::Sub(Expr::Column(2), Expr::Constant(1)));
  std::vector<int> cols;
  e->CollectColumns(&cols);
  EXPECT_EQ(cols, (std::vector<int>{2, 0}));
}

TEST(ExprBoundsTest, PropagatesIntervals) {
  std::vector<ValueBounds> bounds = {{-10, 20}, {0, 5}};
  auto r = Expr::Add(Expr::Column(0), Expr::Column(1))->EvalBounds(bounds);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().min, -10);
  EXPECT_EQ(r.value().max, 25);

  r = Expr::Sub(Expr::Column(0), Expr::Column(1))->EvalBounds(bounds);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().min, -15);
  EXPECT_EQ(r.value().max, 20);

  r = Expr::Mul(Expr::Column(0), Expr::Column(1))->EvalBounds(bounds);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().min, -50);
  EXPECT_EQ(r.value().max, 100);
}

TEST(ExprBoundsTest, MulOfNegativesFlipsSign) {
  std::vector<ValueBounds> bounds = {{-10, -2}, {-5, -1}};
  auto r = Expr::Mul(Expr::Column(0), Expr::Column(1))->EvalBounds(bounds);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().min, 2);
  EXPECT_EQ(r.value().max, 50);
}

TEST(ExprBoundsTest, DetectsOverflowRisk) {
  const int64_t big = std::numeric_limits<int64_t>::max() / 2;
  std::vector<ValueBounds> bounds = {{0, big}, {0, big}};
  auto r = Expr::Mul(Expr::Column(0), Expr::Column(1))->EvalBounds(bounds);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOverflowRisk);
}

TEST(ExprBoundsTest, RejectsUnknownColumn) {
  std::vector<ValueBounds> bounds = {{0, 1}};
  auto r = Expr::Column(5)->EvalBounds(bounds);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace bipie
