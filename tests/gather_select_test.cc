#include "vector/gather_select.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "vector/compact.h"
#include "test_util.h"

namespace bipie {
namespace {

// (bit width, selectivity) sweep — covers the narrow-gather, wide-gather and
// scalar paths.
class GatherSelectSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(GatherSelectSweep, MatchesScalarReference) {
  const int w = std::get<0>(GetParam());
  const double selectivity = std::get<1>(GetParam());
  const size_t n = 5000;
  auto values = test::RandomPackedValues(n, w, 17 * w);
  auto packed = test::Pack(values, w);
  auto sel = MakeSelectionBytes(n, selectivity, 3 * w);
  AlignedBuffer idx_buf((n + 8) * sizeof(uint32_t));
  const size_t count =
      CompactToIndexVector(sel.data(), n, idx_buf.data_as<uint32_t>());
  const uint32_t* indices = idx_buf.data_as<uint32_t>();

  for (int word = SmallestWordBytes(w); word <= 8; word *= 2) {
    AlignedBuffer expected(count * word);
    internal::GatherSelectScalar(packed.data(), w, indices, count,
                                 expected.data(), word);
    test::ForEachIsaTier([&](IsaTier tier) {
      AlignedBuffer out(count * word);
      GatherSelect(packed.data(), w, indices, count, out.data(), word);
      ASSERT_EQ(std::memcmp(out.data(), expected.data(), count * word), 0)
          << "w=" << w << " word=" << word << " sel=" << selectivity
          << " tier=" << IsaTierName(tier);
    });
    // And the scalar reference itself must match the original values.
    for (size_t i = 0; i < count; ++i) {
      uint64_t got = 0;
      std::memcpy(&got, expected.data() + i * word, word);
      ASSERT_EQ(got, values[indices[i]]) << "w=" << w;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndSelectivities, GatherSelectSweep,
    ::testing::Combine(::testing::Values(1, 4, 5, 7, 8, 10, 14, 20, 21, 25,
                                         26, 32, 33, 57, 58, 64),
                       ::testing::Values(0.02, 0.38, 1.0)));

TEST(GatherSelectTest, EmptyIndexVector) {
  auto values = test::RandomPackedValues(100, 7, 1);
  auto packed = test::Pack(values, 7);
  uint8_t sink = 0xEE;
  GatherSelect(packed.data(), 7, nullptr, 0, &sink, 1);
  EXPECT_EQ(sink, 0xEE);
}

TEST(GatherSelectTest, SingleSelectedRow) {
  auto values = test::RandomPackedValues(4096, 21, 9);
  auto packed = test::Pack(values, 21);
  const uint32_t index = 4095;
  AlignedBuffer out(4 + 32);
  GatherSelect(packed.data(), 21, &index, 1, out.data(), 4);
  EXPECT_EQ(out.data_as<uint32_t>()[0], values[4095]);
}

// Index-vector lengths too short to fill a SIMD stride, and lengths that
// leave every possible scalar-tail remainder (strides of 4 and 8 lanes
// depending on word width and tier), must all decode exactly.
TEST(GatherSelectTest, ShortAndUnalignedCountsEveryTier) {
  const size_t n = 509;  // prime: no count below divides it evenly
  for (int w : {1, 5, 8, 13, 21, 33, 64}) {
    auto values = test::RandomPackedValues(n, w, 7000 + w);
    auto packed = test::Pack(values, w);
    for (size_t count : {size_t{1}, size_t{2}, size_t{3}, size_t{5},
                         size_t{7}, size_t{9}, size_t{13}, size_t{31},
                         size_t{33}}) {
      // Spread the indices across the batch, ending at the last row so the
      // gather touches the final (partially packed) word.
      std::vector<uint32_t> idx(count);
      for (size_t i = 0; i < count; ++i) {
        idx[i] = static_cast<uint32_t>(i * (n - 1) / std::max<size_t>(
                                                         1, count - 1));
      }
      for (int word = SmallestWordBytes(w); word <= 8; word *= 2) {
        test::ForEachIsaTier([&](IsaTier tier) {
          AlignedBuffer out(count * word + 32);
          GatherSelect(packed.data(), w, idx.data(), count, out.data(), word);
          for (size_t i = 0; i < count; ++i) {
            uint64_t got = 0;
            std::memcpy(&got, out.data() + i * word, word);
            ASSERT_EQ(got, values[idx[i]])
                << "w=" << w << " count=" << count << " word=" << word
                << " i=" << i << " tier=" << IsaTierName(tier);
          }
        });
      }
    }
  }
}

TEST(GatherSelectTest, RepeatedIndicesAllowedWithinAscendingRuns) {
  // Sort-based aggregation can produce duplicate row ids across groups is
  // not possible, but gather itself must tolerate plateaus.
  auto values = test::RandomPackedValues(64, 10, 2);
  auto packed = test::Pack(values, 10);
  std::vector<uint32_t> idx = {5, 5, 5, 5, 9, 9, 9, 9, 63, 63, 63, 63};
  AlignedBuffer out(idx.size() * 2 + 32);
  GatherSelect(packed.data(), 10, idx.data(), idx.size(), out.data(), 2);
  for (size_t i = 0; i < idx.size(); ++i) {
    EXPECT_EQ(out.data_as<uint16_t>()[i], values[idx[i]]);
  }
}

}  // namespace
}  // namespace bipie
