// Admission control (DESIGN.md §13): slot accounting, bounded-queue
// rejection, cancellation while queued, and the ScanOptions::admission
// override that threads a controller through Execute().
#include "exec/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/scan.h"
#include "tests/test_util.h"

namespace bipie {
namespace {

TEST(AdmissionTest, UnlimitedIsAlwaysAdmitted) {
  AdmissionController controller;  // default: unlimited
  AdmissionController::Ticket ticket;
  EXPECT_TRUE(controller.Admit(nullptr, &ticket).ok());
  EXPECT_EQ(controller.running(), 0u);  // fast path holds no slot state
}

TEST(AdmissionTest, SlotsAreHeldAndReleased) {
  AdmissionController controller({/*max_concurrent_queries=*/2,
                                  /*max_queued_queries=*/0});
  AdmissionController::Ticket t1, t2;
  EXPECT_TRUE(controller.Admit(nullptr, &t1).ok());
  EXPECT_TRUE(controller.Admit(nullptr, &t2).ok());
  EXPECT_EQ(controller.running(), 2u);

  // All slots busy and no queue: immediate structured rejection.
  AdmissionController::Ticket t3;
  const Status rejected = controller.Admit(nullptr, &t3);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(controller.running(), 2u);

  t1.Release();
  EXPECT_EQ(controller.running(), 1u);
  EXPECT_TRUE(controller.Admit(nullptr, &t3).ok());
  EXPECT_EQ(controller.running(), 2u);
}

TEST(AdmissionTest, TicketReleasesOnDestructionAndMove) {
  AdmissionController controller({1, 0});
  {
    AdmissionController::Ticket outer;
    {
      AdmissionController::Ticket inner;
      ASSERT_TRUE(controller.Admit(nullptr, &inner).ok());
      EXPECT_EQ(controller.running(), 1u);
      outer = std::move(inner);  // slot follows the move, is not doubled
      EXPECT_EQ(controller.running(), 1u);
    }
    EXPECT_EQ(controller.running(), 1u);  // moved-from dtor released nothing
  }
  EXPECT_EQ(controller.running(), 0u);
}

TEST(AdmissionTest, QueuedQueryGetsSlotWhenFreed) {
  AdmissionController controller({1, 1});
  AdmissionController::Ticket holder;
  ASSERT_TRUE(controller.Admit(nullptr, &holder).ok());

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    AdmissionController::Ticket ticket;
    const Status status = controller.Admit(nullptr, &ticket);
    EXPECT_TRUE(status.ok()) << status.ToString();
    admitted.store(true);
  });
  // The waiter parks in the queue; releasing the slot must wake it.
  while (controller.queued() == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  holder.Release();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(controller.running(), 0u);
  EXPECT_EQ(controller.queued(), 0u);
}

TEST(AdmissionTest, CancelledWhileQueuedReturnsCancelled) {
  AdmissionController controller({1, 4});
  AdmissionController::Ticket holder;
  ASSERT_TRUE(controller.Admit(nullptr, &holder).ok());

  QueryContext context;
  context.Cancel();
  AdmissionController::Ticket ticket;
  const Status status = controller.Admit(&context, &ticket);
  EXPECT_EQ(status.code(), StatusCode::kCancelled);
  EXPECT_EQ(controller.queued(), 0u);  // the cancelled waiter left the queue
  EXPECT_EQ(controller.running(), 1u);
}

TEST(AdmissionTest, ScanRespectsInjectedController) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"v", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 1024);
  for (size_t i = 0; i < 2000; ++i) {
    app.AppendRow({static_cast<int64_t>(i % 4), static_cast<int64_t>(i % 7)});
  }
  app.Flush();
  QuerySpec query;
  query.group_by = {"g"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("v")};

  AdmissionController controller({1, 0});
  ScanOptions options;
  options.admission = &controller;

  // A held slot makes the scan's admission fail structurally.
  AdmissionController::Ticket holder;
  ASSERT_TRUE(controller.Admit(nullptr, &holder).ok());
  Result<QueryResult> rejected = test::ExecuteChecked(table, query, options);
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  // Freeing it admits the same scan; the ticket is released by Execute().
  holder.Release();
  Result<QueryResult> admitted = test::ExecuteChecked(table, query, options);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  EXPECT_EQ(admitted.value().rows.size(), 4u);
  EXPECT_EQ(controller.running(), 0u);
}

}  // namespace
}  // namespace bipie
