#include "vector/agg_scalar.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "test_util.h"

namespace bipie {
namespace {

struct Fixture {
  std::vector<uint8_t> groups;
  std::vector<std::vector<int64_t>> cols;
  std::vector<const int64_t*> col_ptrs;
  int num_groups;

  Fixture(size_t n, int num_groups_in, int num_cols, uint64_t seed)
      : num_groups(num_groups_in) {
    Rng rng(seed);
    groups.resize(n);
    for (auto& g : groups) {
      g = static_cast<uint8_t>(rng.NextBounded(num_groups));
    }
    cols.resize(num_cols);
    for (auto& col : cols) {
      col.resize(n);
      for (auto& v : col) v = rng.NextInRange(-1000, 1000);
    }
    for (auto& col : cols) col_ptrs.push_back(col.data());
  }

  std::vector<uint64_t> ReferenceCounts() const {
    std::vector<uint64_t> counts(num_groups, 0);
    for (uint8_t g : groups) ++counts[g];
    return counts;
  }

  // sums[g * cols + c]
  std::vector<int64_t> ReferenceSums() const {
    std::vector<int64_t> sums(num_groups * cols.size(), 0);
    for (size_t i = 0; i < groups.size(); ++i) {
      for (size_t c = 0; c < cols.size(); ++c) {
        sums[groups[i] * cols.size() + c] += cols[c][i];
      }
    }
    return sums;
  }
};

TEST(ScalarCountTest, SingleAndMultiArrayAgree) {
  for (int num_groups : {1, 2, 6, 32, 200}) {
    Fixture f(4097, num_groups, 0, num_groups);
    auto expected = f.ReferenceCounts();

    std::vector<uint64_t> single(num_groups, 0);
    ScalarCountSingleArray(f.groups.data(), f.groups.size(), single.data());
    EXPECT_EQ(single, expected) << "groups=" << num_groups;

    std::vector<uint64_t> multi(num_groups, 0);
    ScalarCountMultiArray(f.groups.data(), f.groups.size(), num_groups,
                          multi.data());
    EXPECT_EQ(multi, expected) << "groups=" << num_groups;
  }
}

TEST(ScalarCountTest, AccumulatesAcrossCalls) {
  Fixture f(100, 4, 0, 9);
  std::vector<uint64_t> counts(4, 0);
  ScalarCountSingleArray(f.groups.data(), 50, counts.data());
  ScalarCountSingleArray(f.groups.data() + 50, 50, counts.data());
  EXPECT_EQ(counts, f.ReferenceCounts());
}

TEST(ScalarCountTest, OddRowCountMultiArray) {
  Fixture f(7, 3, 0, 5);
  std::vector<uint64_t> counts(3, 0);
  ScalarCountMultiArray(f.groups.data(), 7, 3, counts.data());
  EXPECT_EQ(counts, f.ReferenceCounts());
}

TEST(ScalarSumTest, SingleArray) {
  Fixture f(3000, 8, 1, 13);
  std::vector<int64_t> sums(8, 0);
  ScalarSumSingleArray(f.groups.data(), f.cols[0].data(), f.groups.size(),
                       sums.data());
  EXPECT_EQ(sums, f.ReferenceSums());
}

TEST(ScalarSumTest, MultiArray) {
  Fixture f(3001, 8, 1, 14);
  std::vector<int64_t> sums(8, 0);
  ScalarSumMultiArray(f.groups.data(), f.cols[0].data(), f.groups.size(), 8,
                      sums.data());
  EXPECT_EQ(sums, f.ReferenceSums());
}

class ScalarMultiSum : public ::testing::TestWithParam<int> {};

TEST_P(ScalarMultiSum, AllVariantsAgree) {
  const int num_cols = GetParam();
  Fixture f(2111, 32, num_cols, 100 + num_cols);
  auto expected = f.ReferenceSums();

  std::vector<int64_t> col_at_a_time(32 * num_cols, 0);
  ScalarSumColumnAtATime(f.groups.data(), f.col_ptrs.data(), num_cols,
                         f.groups.size(), col_at_a_time.data());
  EXPECT_EQ(col_at_a_time, expected);

  std::vector<int64_t> row_at_a_time(32 * num_cols, 0);
  ScalarSumRowAtATime(f.groups.data(), f.col_ptrs.data(), num_cols,
                      f.groups.size(), row_at_a_time.data());
  EXPECT_EQ(row_at_a_time, expected);

  std::vector<int64_t> unrolled(32 * num_cols, 0);
  ScalarSumRowAtATimeUnrolled(f.groups.data(), f.col_ptrs.data(), num_cols,
                              f.groups.size(), unrolled.data());
  EXPECT_EQ(unrolled, expected);
}

INSTANTIATE_TEST_SUITE_P(OneToTenSums, ScalarMultiSum,
                         ::testing::Range(1, 11));

TEST(ScalarSumTest, SkewedGroupDistribution) {
  // All rows in one group — the exact case the multi-array variant exists
  // for; results must still be exact.
  const size_t n = 1000;
  std::vector<uint8_t> groups(n, 3);
  std::vector<int64_t> values(n, 7);
  std::vector<int64_t> single(8, 0), multi(8, 0);
  ScalarSumSingleArray(groups.data(), values.data(), n, single.data());
  ScalarSumMultiArray(groups.data(), values.data(), n, 8, multi.data());
  EXPECT_EQ(single[3], 7000);
  EXPECT_EQ(multi, single);
}

TEST(ScalarSumTest, EmptyInput) {
  std::vector<int64_t> sums(4, 0);
  ScalarSumSingleArray(nullptr, nullptr, 0, sums.data());
  EXPECT_EQ(sums, std::vector<int64_t>(4, 0));
}

}  // namespace
}  // namespace bipie
