#include "vector/agg_sort.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "vector/compact.h"
#include "test_util.h"

namespace bipie {
namespace {

TEST(SortedBatchTest, PartitionsRowsByGroup) {
  const size_t n = 4096;
  const int num_groups = 7;
  auto groups = test::RandomGroups(n, num_groups, 1);
  SortedBatch batch;
  batch.Sort(groups.data(), nullptr, n, num_groups);

  std::vector<uint64_t> expected(num_groups, 0);
  for (size_t i = 0; i < n; ++i) ++expected[groups.data()[i]];

  std::vector<bool> seen(n, false);
  for (int g = 0; g < num_groups; ++g) {
    ASSERT_EQ(batch.count(g), expected[g]) << "g=" << g;
    for (uint32_t i = batch.offset(g); i < batch.offset(g + 1); ++i) {
      const uint32_t row = batch.indices()[i];
      ASSERT_LT(row, n);
      ASSERT_FALSE(seen[row]) << "row emitted twice";
      seen[row] = true;
      ASSERT_EQ(groups.data()[row], g);
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(SortedBatchTest, RespectsSelectionIndexVector) {
  const size_t n = 2000;
  const int num_groups = 5;
  auto groups = test::RandomGroups(n, num_groups, 2);
  auto sel = MakeSelectionBytes(n, 0.3, 3);
  AlignedBuffer idx_buf((n + 8) * sizeof(uint32_t));
  const size_t count =
      CompactToIndexVector(sel.data(), n, idx_buf.data_as<uint32_t>());

  SortedBatch batch;
  batch.Sort(groups.data(), idx_buf.data_as<uint32_t>(), count, num_groups);

  size_t total = 0;
  for (int g = 0; g < num_groups; ++g) {
    for (uint32_t i = batch.offset(g); i < batch.offset(g + 1); ++i) {
      const uint32_t row = batch.indices()[i];
      ASSERT_EQ(sel[row], 0xFF) << "unselected row in sorted output";
      ASSERT_EQ(groups.data()[row], g);
      ++total;
    }
  }
  EXPECT_EQ(total, count);
}

TEST(SortedBatchTest, EmptyGroupsProduceEmptyRanges) {
  std::vector<uint8_t> groups = {0, 0, 3, 3, 3};
  SortedBatch batch;
  batch.Sort(groups.data(), nullptr, groups.size(), 4);
  EXPECT_EQ(batch.count(0), 2u);
  EXPECT_EQ(batch.count(1), 0u);
  EXPECT_EQ(batch.count(2), 0u);
  EXPECT_EQ(batch.count(3), 3u);
}

TEST(SortedBatchTest, SkewedInputStillCorrect) {
  // Everything in one group stresses the even/odd cursor pairing.
  const size_t n = 1001;
  std::vector<uint8_t> groups(n, 2);
  SortedBatch batch;
  batch.Sort(groups.data(), nullptr, n, 4);
  EXPECT_EQ(batch.count(2), n);
  std::vector<bool> seen(n, false);
  for (uint32_t i = batch.offset(2); i < batch.offset(3); ++i) {
    seen[batch.indices()[i]] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

class SortedGatherSumWidths : public ::testing::TestWithParam<int> {};

TEST_P(SortedGatherSumWidths, MatchesReference) {
  const int w = GetParam();
  const size_t n = 4096;
  const int num_groups = 9;
  auto groups = test::RandomGroups(n, num_groups, 4 + w);
  auto values = test::RandomPackedValues(n, w, 5 + w);
  auto packed = test::Pack(values, w);

  std::vector<uint64_t> expected(num_groups, 0);
  for (size_t i = 0; i < n; ++i) expected[groups.data()[i]] += values[i];

  SortedBatch batch;
  batch.Sort(groups.data(), nullptr, n, num_groups);
  test::ForEachIsaTier([&](IsaTier tier) {
    std::vector<uint64_t> sums(num_groups, 0);
    SortedGatherSum(packed.data(), w, batch, sums.data());
    ASSERT_EQ(sums, expected) << "w=" << w << " tier=" << IsaTierName(tier);
  });
}

INSTANTIATE_TEST_SUITE_P(BitWidths, SortedGatherSumWidths,
                         ::testing::Values(1, 5, 8, 10, 14, 20, 23, 25, 26,
                                           33, 57, 58, 64));

TEST(SortedGatherSumTest, WithSelection) {
  const int w = 23;
  const size_t n = 3000;
  const int num_groups = 4;
  auto groups = test::RandomGroups(n, num_groups, 6);
  auto values = test::RandomPackedValues(n, w, 7);
  auto packed = test::Pack(values, w);
  auto sel = MakeSelectionBytes(n, 0.4, 8);
  AlignedBuffer idx_buf((n + 8) * sizeof(uint32_t));
  const size_t count =
      CompactToIndexVector(sel.data(), n, idx_buf.data_as<uint32_t>());

  std::vector<uint64_t> expected(num_groups, 0);
  for (size_t i = 0; i < n; ++i) {
    if (sel[i]) expected[groups.data()[i]] += values[i];
  }

  SortedBatch batch;
  batch.Sort(groups.data(), idx_buf.data_as<uint32_t>(), count, num_groups);
  std::vector<uint64_t> sums(num_groups, 0);
  SortedGatherSum(packed.data(), w, batch, sums.data());
  EXPECT_EQ(sums, expected);
}

TEST(SortedSumDecodedTest, MatchesReferenceWithNegatives) {
  const size_t n = 2500;
  const int num_groups = 6;
  auto groups = test::RandomGroups(n, num_groups, 10);
  AlignedBuffer values(n * 8);
  Rng rng(11);
  std::vector<int64_t> expected(num_groups, 0);
  for (size_t i = 0; i < n; ++i) {
    const int64_t v = rng.NextInRange(-1000000, 1000000);
    values.data_as<int64_t>()[i] = v;
    expected[groups.data()[i]] += v;
  }
  SortedBatch batch;
  batch.Sort(groups.data(), nullptr, n, num_groups);
  test::ForEachIsaTier([&](IsaTier) {
    std::vector<int64_t> sums(num_groups, 0);
    SortedSumDecoded(values.data_as<int64_t>(), batch, sums.data());
    ASSERT_EQ(sums, expected);
  });
}

}  // namespace
}  // namespace bipie
