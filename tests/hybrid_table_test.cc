#include "storage/hybrid_table.h"

#include <gtest/gtest.h>

#include "baseline/scalar_engine.h"
#include "common/random.h"

namespace bipie {
namespace {

Schema MakeSchema() {
  return {{"region", ColumnType::kString},
          {"amount", ColumnType::kInt64},
          {"qty", ColumnType::kInt64}};
}

void InsertRandomRows(HybridTable* table, size_t n, uint64_t seed) {
  Rng rng(seed);
  const char* regions[3] = {"n", "s", "e"};
  for (size_t i = 0; i < n; ++i) {
    table->Insert({0, rng.NextInRange(0, 9999), rng.NextInRange(1, 50)},
                  {regions[rng.NextBounded(3)], "", ""});
  }
}

TEST(HybridTableTest, InsertsVisibleBeforeMerge) {
  HybridTable table(MakeSchema(), /*segment_rows=*/1 << 16);
  table.set_merge_threshold(1 << 20);  // no auto merge
  InsertRandomRows(&table, 1000, 1);
  EXPECT_EQ(table.mutable_rows(), 1000u);
  EXPECT_EQ(table.immutable().num_rows(), 0u);

  QuerySpec query;
  query.group_by = {"region"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount")};
  auto result = ExecuteQueryHybrid(table, query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  uint64_t total = 0;
  for (const ResultRow& row : result.value().rows) total += row.count;
  EXPECT_EQ(total, 1000u);
}

TEST(HybridTableTest, MergeMovesRowsToImmutableRegion) {
  HybridTable table(MakeSchema(), 512);
  table.set_merge_threshold(1 << 20);
  InsertRandomRows(&table, 1500, 2);

  QuerySpec query;
  query.group_by = {"region"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount"),
                      AggregateSpec::Min("qty"), AggregateSpec::Max("qty")};
  auto before = ExecuteQueryHybrid(table, query);
  ASSERT_TRUE(before.ok());

  table.Merge();
  EXPECT_EQ(table.mutable_rows(), 0u);
  EXPECT_EQ(table.immutable().num_rows(), 1500u);
  EXPECT_EQ(table.immutable().num_segments(), 3u);  // 512-row segments

  auto after = ExecuteQueryHybrid(table, query);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before.value().rows.size(), after.value().rows.size());
  for (size_t r = 0; r < after.value().rows.size(); ++r) {
    EXPECT_EQ(before.value().rows[r].sums, after.value().rows[r].sums);
    EXPECT_EQ(before.value().rows[r].count, after.value().rows[r].count);
  }
}

TEST(HybridTableTest, StraddlingQueryMergesBothRegions) {
  HybridTable table(MakeSchema(), 4096);
  table.set_merge_threshold(1 << 20);
  InsertRandomRows(&table, 5000, 3);
  table.Merge();                      // first 5000 rows immutable
  InsertRandomRows(&table, 777, 4);   // fresh rows in the rowstore
  EXPECT_EQ(table.mutable_rows(), 777u);

  QuerySpec query;
  query.group_by = {"region"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount"),
                      AggregateSpec::SumExpr(Expr::Mul(
                          Expr::Column(1), Expr::Column(2))),
                      AggregateSpec::Max("amount")};
  query.filters.emplace_back("amount", CompareOp::kLt, int64_t{8000});

  auto straddling = ExecuteQueryHybrid(table, query);
  ASSERT_TRUE(straddling.ok()) << straddling.status().ToString();

  // Reference: force-merge a copy... instead merge this table and re-ask.
  table.Merge();
  auto merged = ExecuteQueryHybrid(table, query);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(straddling.value().rows.size(), merged.value().rows.size());
  for (size_t r = 0; r < merged.value().rows.size(); ++r) {
    EXPECT_EQ(straddling.value().rows[r].sums, merged.value().rows[r].sums);
    EXPECT_EQ(straddling.value().rows[r].count,
              merged.value().rows[r].count);
    EXPECT_EQ(straddling.value().rows[r].group,
              merged.value().rows[r].group);
  }
}

TEST(HybridTableTest, AutoMergeAtThreshold) {
  HybridTable table(MakeSchema(), 256);
  table.set_merge_threshold(256);
  InsertRandomRows(&table, 1000, 5);
  // Threshold-triggered merges keep the mutable region small.
  EXPECT_LT(table.mutable_rows(), 256u);
  EXPECT_GE(table.immutable().num_rows(), 768u);
  EXPECT_EQ(table.num_rows(), 1000u);
}

TEST(HybridTableTest, StringFilterAcrossRegions) {
  HybridTable table(MakeSchema(), 4096);
  table.set_merge_threshold(1 << 20);
  InsertRandomRows(&table, 2000, 6);
  table.Merge();
  InsertRandomRows(&table, 300, 7);

  QuerySpec query;
  query.aggregates = {AggregateSpec::Count()};
  query.filters.emplace_back("region", CompareOp::kEq, std::string("s"));
  auto result = ExecuteQueryHybrid(table, query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 1u);
  // ~1/3 of 2300 rows.
  EXPECT_GT(result.value().rows[0].count, 600u);
  EXPECT_LT(result.value().rows[0].count, 950u);

  table.Merge();
  auto merged = ExecuteQueryHybrid(table, query);
  EXPECT_EQ(result.value().rows[0].count, merged.value().rows[0].count);
}

TEST(HybridTableTest, EmptyRegionsAreFine) {
  HybridTable table(MakeSchema());
  QuerySpec query;
  query.aggregates = {AggregateSpec::Count()};
  auto result = ExecuteQueryHybrid(table, query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().rows.empty());
  table.Merge();  // no-op
  EXPECT_EQ(table.num_rows(), 0u);
}

}  // namespace
}  // namespace bipie
