// The query service end to end (DESIGN.md §14): SQL over the framed
// protocol against a live loopback server. Covers session settings
// isolation, the in-flight-query rule, mid-query cancel frames, deadline
// expiry while queued, admission rejection over the wire, hostile framing
// (oversized / truncated / garbage), memory-limit errors that keep the
// connection, and session-tracker balance after queries drain.
#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/memory_tracker.h"
#include "obs/metrics.h"
#include "server/client.h"
#include "server/protocol.h"
#include "storage/table.h"

namespace bipie {
namespace {

using server::Client;
using server::FrameType;
using server::QueryStatsWire;
using server::Server;
using server::ServerOptions;

Table MakeTestTable(size_t rows = 20000) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"v", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({static_cast<int64_t>(i % 4), static_cast<int64_t>(i % 7)});
  }
  app.Flush();
  return table;
}

// Blocks queries between admission grant and execution, so tests can land
// frames (Cancel) or hold the admission slot at a deterministic point.
class Gate {
 public:
  void Enter() {
    std::unique_lock<std::mutex> lock(mu_);
    if (!armed_) return;
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
  }
  void Arm() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = true;
  }
  void WaitEntered(int count = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, count] { return entered_ >= count; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = false;
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool armed_ = false;
  bool released_ = false;
  int entered_ = 0;
};

TEST(ServerTest, QueryRoundTrip) {
  Table table = MakeTestTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  QueryResult result;
  QueryStatsWire stats;
  Status st = client.Query(
      "SELECT g, count(*), sum(v) FROM t WHERE v >= 1 GROUP BY g", &result,
      &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(result.rows.size(), 4u);
  ASSERT_EQ(result.group_column_names.size(), 1u);
  EXPECT_EQ(result.group_column_names[0], "g");
  uint64_t total = 0;
  for (const ResultRow& row : result.rows) total += row.count;
  EXPECT_EQ(total, 20000u - 20000u / 7u - 1u);  // rows with v == 0 filtered
  EXPECT_EQ(stats.rows_scanned, 20000u);
  EXPECT_GT(stats.exec_ns, 0u);
  // Uncontended: the admission grant is inline, so the measured queue wait
  // is dispatch overhead (microseconds), not real queueing.
  EXPECT_LT(stats.queue_wait_ns, uint64_t{50} * 1000 * 1000);
}

TEST(ServerTest, ExplainOverWire) {
  Table table = MakeTestTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::string text;
  Status st = client.Explain("EXPLAIN SELECT count(*) FROM t", &text);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(text.find("BIPie plan"), std::string::npos);
}

TEST(ServerTest, ErrorsKeepTheSessionAlive) {
  Table table = MakeTestTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Parse error (positioned), unknown table, unknown setting: all are
  // structured Error frames, none of them drops the connection.
  QueryResult ignored;
  Status st = client.Query("SELECT FROM t", &ignored);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("parse error at byte"), std::string::npos);

  st = client.Query("SELECT count(*) FROM nope", &ignored);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("unknown table"), std::string::npos);

  st = client.Set("no_such_setting", "1");
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  QueryResult result;
  st = client.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].count, 20000u);
}

TEST(ServerTest, SessionSettingsAreIsolated) {
  Table table = MakeTestTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client starved, healthy;
  ASSERT_TRUE(starved.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server.port()).ok());

  // Session A sets an impossible memory limit; session B must not see it.
  ASSERT_TRUE(starved.Set("memory_limit_bytes", "1").ok());

  QueryResult result;
  Status st = starved.Query("SELECT g, count(*), sum(v) FROM t GROUP BY g",
                            &result);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);

  st = healthy.Query("SELECT g, count(*), sum(v) FROM t GROUP BY g", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows.size(), 4u);

  // The memory-limit failure was a clean Error frame: session A's
  // connection survives and works again once the delta is lifted.
  ASSERT_TRUE(starved.Set("memory_limit_bytes", "0").ok());
  result = QueryResult{};
  st = starved.Query("SELECT g, count(*), sum(v) FROM t GROUP BY g", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows.size(), 4u);
}

TEST(ServerTest, MidQueryCancelFrame) {
  Table table = MakeTestTable();
  Gate gate;
  gate.Arm();
  std::atomic<QueryContext*> held_ctx{nullptr};
  ServerOptions options;
  options.before_execute_hook = [&](QueryContext* ctx) {
    held_ctx.store(ctx);
    gate.Enter();
  };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.SendQuery("SELECT g, count(*) FROM t GROUP BY g").ok());
  gate.WaitEntered();
  // The query is held right before execution; the Cancel frame is
  // processed by the IO thread while the worker is parked. Wait for the
  // cancellation to latch before resuming, or the query could finish
  // before the frame crosses the loopback.
  ASSERT_TRUE(client.SendCancel().ok());
  while (!held_ctx.load()->is_cancelled()) std::this_thread::yield();
  gate.Release();

  QueryResult result;
  Status st = client.ReadQueryResponse(&result, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);

  // The session survives the cancellation.
  st = client.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows[0].count, 20000u);
}

TEST(ServerTest, OnlyOneQueryInFlightPerConnection) {
  Table table = MakeTestTable();
  Gate gate;
  gate.Arm();
  ServerOptions options;
  options.before_execute_hook = [&gate](QueryContext*) { gate.Enter(); };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.SendQuery("SELECT count(*) FROM t").ok());
  gate.WaitEntered();
  // Second query while the first is held: immediate rejection frame (the
  // first query's frames come later, so the rejection is read first).
  ASSERT_TRUE(client.SendQuery("SELECT count(*) FROM t").ok());
  Status st = client.ReadQueryResponse(nullptr, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("already in flight"), std::string::npos);

  gate.Release();
  QueryResult result;
  st = client.ReadQueryResponse(&result, nullptr);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows[0].count, 20000u);
}

TEST(ServerTest, DeadlineExpiryWhileQueued) {
  Table table = MakeTestTable();
  Gate gate;
  gate.Arm();
  ServerOptions options;
  options.admission.max_concurrent_queries = 1;
  options.admission.max_queued_queries = 4;
  options.before_execute_hook = [&gate](QueryContext*) { gate.Enter(); };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client holder, queued;
  ASSERT_TRUE(holder.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(queued.Connect("127.0.0.1", server.port()).ok());

  // The holder occupies the only slot, parked at the gate.
  ASSERT_TRUE(holder.SendQuery("SELECT count(*) FROM t").ok());
  gate.WaitEntered();

  // The queued query's 50ms deadline expires in the admission queue; the
  // IO loop's Tick fails it with kCancelled without it ever running.
  ASSERT_TRUE(queued.Set("deadline_ms", "50").ok());
  Status st = queued.Query("SELECT count(*) FROM t", nullptr);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);

  gate.Release();
  QueryResult result;
  st = holder.ReadQueryResponse(&result, nullptr);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows[0].count, 20000u);
}

TEST(ServerTest, AdmissionRejectionOverWire) {
  Table table = MakeTestTable();
  Gate gate;
  gate.Arm();
  ServerOptions options;
  options.admission.max_concurrent_queries = 1;
  options.admission.max_queued_queries = 0;  // no queue: reject outright
  options.before_execute_hook = [&gate](QueryContext*) { gate.Enter(); };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client holder, rejected;
  ASSERT_TRUE(holder.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(rejected.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(holder.SendQuery("SELECT count(*) FROM t").ok());
  gate.WaitEntered();

  Status st = rejected.Query("SELECT count(*) FROM t", nullptr);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("admission queue full"), std::string::npos);

  gate.Release();
  ASSERT_TRUE(holder.ReadQueryResponse(nullptr, nullptr).ok());
}

TEST(ServerTest, HostileFramesGetStructuredErrors) {
  Table table = MakeTestTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  {
    // Oversized length prefix: error frame, then the connection drops.
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    std::vector<uint8_t> evil = {0xff, 0xff, 0xff, 0xff, /*type=*/1};
    ASSERT_TRUE(client.SendRaw(evil).ok());
    std::vector<uint8_t> payload;
    FrameType type;
    ASSERT_TRUE(client.ReadFrameInto(&payload, &type).ok());
    EXPECT_EQ(type, FrameType::kError);
    EXPECT_FALSE(client.ReadFrameInto(&payload, &type).ok());  // closed
  }
  {
    // Unknown frame type.
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    std::vector<uint8_t> evil = {0, 0, 0, 0, /*type=*/0xee};
    ASSERT_TRUE(client.SendRaw(evil).ok());
    std::vector<uint8_t> payload;
    FrameType type;
    ASSERT_TRUE(client.ReadFrameInto(&payload, &type).ok());
    EXPECT_EQ(type, FrameType::kError);
  }
  {
    // Garbage payload: a Query frame whose inner string length lies about
    // the remaining bytes.
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    std::vector<uint8_t> evil = {6, 0, 0, 0, /*type=*/1,
                                 /*strlen=100:*/ 100, 0, 0, 0, 'h', 'i'};
    ASSERT_TRUE(client.SendRaw(evil).ok());
    std::vector<uint8_t> payload;
    FrameType type;
    ASSERT_TRUE(client.ReadFrameInto(&payload, &type).ok());
    EXPECT_EQ(type, FrameType::kError);
  }
  {
    // Truncated frame followed by client disconnect: the server just
    // drops the half-read stream.
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(client.SendRaw({50, 0, 0, 0, 1, 'S', 'E'}).ok());
    client.Close();
  }

  // After all of the hostility the server still serves clean sessions.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  QueryResult result;
  Status st = client.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows[0].count, 20000u);
}

TEST(ServerTest, SessionTrackerBalancesAfterQueries) {
  Table table = MakeTestTable();
  // The session tracker lives inside the Connection, which the IO thread
  // frees at teardown — so inspect it from the worker thread (where the
  // connection is pinned by the running query) and ship plain values out.
  std::atomic<int> hook_calls{0};
  std::atomic<bool> parent_is_session{false};
  std::atomic<uint64_t> session_used_at_second_query{~uint64_t{0}};
  ServerOptions options;
  options.before_execute_hook = [&](QueryContext* ctx) {
    // The query tracker's parent is the connection's session tracker.
    MemoryTracker* session = ctx->memory_tracker().parent();
    if (hook_calls.fetch_add(1) == 1) {
      // Second query on the same session: everything the first query
      // charged against the session chain must be back — the invariant
      // the graceful drain relies on.
      parent_is_session.store(session != nullptr &&
                              session != &MemoryTracker::Process());
      session_used_at_second_query.store(session->used());
    }
  };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  QueryResult result;
  QueryStatsWire stats;
  Status st = client.Query("SELECT g, count(*), sum(v) FROM t GROUP BY g",
                           &result, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(stats.peak_memory_bytes, 0u);

  st = client.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(hook_calls.load(), 2);
  EXPECT_TRUE(parent_is_session.load());
  EXPECT_EQ(session_used_at_second_query.load(), 0u);
}

TEST(ServerTest, GracefulShutdownFinishesRunningQueries) {
  Table table = MakeTestTable();
  Gate gate;
  gate.Arm();
  ServerOptions options;
  options.admission.max_concurrent_queries = 1;
  options.admission.max_queued_queries = 4;
  options.before_execute_hook = [&gate](QueryContext*) { gate.Enter(); };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client running, waiting;
  ASSERT_TRUE(running.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(waiting.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(running.SendQuery("SELECT g, count(*) FROM t GROUP BY g").ok());
  gate.WaitEntered();
  ASSERT_TRUE(waiting.SendQuery("SELECT count(*) FROM t").ok());
  while (server.admission().queued() == 0) std::this_thread::yield();

  // Drain on another thread: it must cancel the queued query, wait for the
  // running one (parked at the gate) and only then return.
  std::thread drainer([&server] { server.Shutdown(); });
  // The queued query is failed promptly, before the drain completes.
  Status st = waiting.ReadQueryResponse(nullptr, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);

  gate.Release();
  QueryResult result;
  st = running.ReadQueryResponse(&result, nullptr);
  drainer.join();  // before any assert: a failure must not leak the thread
  ASSERT_TRUE(st.ok()) << st.ToString();  // finished and flushed, not cut off
  EXPECT_EQ(result.rows.size(), 4u);
}

// -------------------------------------------------------------------------
// Resilience (DESIGN.md §15): torn frames, timeouts, slow readers, write
// buffers, ping liveness, shed policy, drain rejection.
// -------------------------------------------------------------------------

// A table whose GROUP BY result is large (one group per row), for tests
// that need a reply far bigger than the kernel's socket buffers.
Table MakeWideResultTable(size_t rows) {
  Table table({{"u", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  for (size_t i = 0; i < rows; ++i) app.AppendRow({static_cast<int64_t>(i)});
  app.Flush();
  return table;
}

// Reads frames until the request terminates (Stats / Ok / Pong / Error) and
// returns the terminal frame type. Result frames in between are discarded.
FrameType ReadToTerminalFrame(Client* client) {
  for (int i = 0; i < 1000; ++i) {
    std::vector<uint8_t> payload;
    FrameType type = FrameType::kError;
    Status st = client->ReadFrameInto(&payload, &type);
    if (!st.ok()) {
      ADD_FAILURE() << "transport failure mid-reply: " << st.ToString();
      return FrameType::kError;
    }
    if (type != FrameType::kResultBatch) return type;
  }
  ADD_FAILURE() << "no terminal frame after 1000 result frames";
  return FrameType::kError;
}

TEST(ServerTest, TornFramesParseAtEveryBoundary) {
  // Every request frame, split at every interior byte boundary into two
  // writes with a pause in between so the server observes a partial frame,
  // must still parse and get its normal reply on the same connection.
  Table table = MakeTestTable(2000);
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  struct Case {
    std::vector<uint8_t> frame;
    FrameType expect;
  };
  const Case cases[] = {
      {server::EncodeQueryFrame("SELECT count(*) FROM t"), FrameType::kStats},
      {server::EncodeSetSettingFrame("priority", "normal"), FrameType::kOk},
      {server::EncodePingFrame(0x7e57), FrameType::kPong},
  };

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (const Case& c : cases) {
    for (size_t split = 1; split < c.frame.size(); ++split) {
      std::vector<uint8_t> head(c.frame.begin(), c.frame.begin() + split);
      std::vector<uint8_t> tail(c.frame.begin() + split, c.frame.end());
      ASSERT_TRUE(client.SendRaw(head).ok());
      // Give the IO thread a poll round to buffer the partial frame.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ASSERT_TRUE(client.SendRaw(tail).ok());
      EXPECT_EQ(ReadToTerminalFrame(&client), c.expect)
          << "frame type " << static_cast<int>(c.frame[4]) << " split at "
          << split;
    }
  }
}

TEST(ServerTest, MidFrameDisconnectsLeaveServerHealthy) {
  // A client that vanishes mid-frame — at every byte boundary — must not
  // wedge the server or leak its session. Fresh connections keep working.
  Table table = MakeTestTable(2000);
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  std::vector<uint8_t> frame =
      server::EncodeQueryFrame("SELECT count(*) FROM t");
  for (size_t cut = 1; cut < frame.size(); ++cut) {
    Client doomed;
    ASSERT_TRUE(doomed.Connect("127.0.0.1", server.port()).ok());
    std::vector<uint8_t> head(frame.begin(), frame.begin() + cut);
    ASSERT_TRUE(doomed.SendRaw(head).ok());
    doomed.Close();
  }

  Client survivor;
  ASSERT_TRUE(survivor.Connect("127.0.0.1", server.port()).ok());
  QueryResult result;
  Status st = survivor.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].count, 2000u);
  // Server::Shutdown (via the dtor) walks every Connection dtor, which
  // DCHECKs session-tracker balance — a leaked session would abort here.
}

TEST(ServerTest, SlowReaderDoesNotBlockOtherConnections) {
  // Acceptance criterion: one connection that stops reading its (large)
  // result must not hold the worker — replies are buffered per connection
  // and drained by the IO thread, so other connections' queries stay fast
  // even with a single execution slot.
  Table table = MakeWideResultTable(150000);
  ServerOptions options;
  options.admission.max_concurrent_queries = 1;
  options.write_stall_timeout_ms = 60000;  // don't reap the stalled reader
  Server server(options);
  server.AddTable("big", &table);
  ASSERT_TRUE(server.Start().ok());

  Client stalled;
  ASSERT_TRUE(stalled.Connect("127.0.0.1", server.port()).ok());
  // ~150k result rows: far more than the kernel socket buffers hold, so
  // most of the reply lands in the server-side write buffer.
  ASSERT_TRUE(stalled.SendQuery("SELECT u, count(*) FROM big GROUP BY u").ok());
  // ...and never reads. Meanwhile, the other connection must make progress
  // promptly: under the old worker-blocking send this took a 10s stall.
  Client brisk;
  ASSERT_TRUE(brisk.Connect("127.0.0.1", server.port()).ok());
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) {
    QueryResult result;
    Status st = brisk.Query("SELECT count(*) FROM big", &result);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_EQ(result.rows[0].count, 150000u);
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 8000) << "slow reader blocked the worker";

  // The stalled reader's reply was buffered, not corrupted or cut: reading
  // it now yields the full result.
  QueryResult full;
  Status st = stalled.ReadQueryResponse(&full, nullptr);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(full.rows.size(), 150000u);
}

TEST(ServerTest, WriteBufferOverflowClosesConnection) {
  // A reader stalled past the per-connection write-buffer limit is a
  // terminal error: the server drops the connection (and releases the
  // buffered bytes) instead of buffering without bound.
  Table table = MakeWideResultTable(150000);
  ServerOptions options;
  options.write_buffer_limit_bytes = 64 * 1024;
  Server server(options);
  server.AddTable("big", &table);
  ASSERT_TRUE(server.Start().ok());

  uint64_t overflows_before =
      obs::Counter::Get("server.write_overflow").value();
  Client stalled;
  ASSERT_TRUE(stalled.Connect("127.0.0.1", server.port()).ok());
  // Never read, and keep stacking multi-megabyte replies: the kernel's
  // socket buffers (which autotune to a few MB on loopback) fill first,
  // then the 64 KiB write buffer overflows and the server cuts the
  // connection. A send failing early just means the cut already happened.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  size_t sent = 0;
  while (obs::Counter::Get("server.write_overflow").value() ==
             overflows_before &&
         std::chrono::steady_clock::now() < deadline) {
    if (!stalled.SendQuery("SELECT u, count(*) FROM big GROUP BY u").ok()) {
      break;
    }
    ++sent;
    // Let the query finish (replies queue per connection; a query sent
    // while one runs would be rejected, which is fine but noisy).
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  }
  EXPECT_GT(obs::Counter::Get("server.write_overflow").value(),
            overflows_before);

  // The stalled connection is dead: draining the kernel-buffered replies
  // eventually hits the cut mid-stream.
  Status st = Status::OK();
  for (size_t i = 0; i <= sent && st.ok(); ++i) {
    st = stalled.ReadQueryResponse(nullptr, nullptr);
  }
  EXPECT_FALSE(st.ok());
  // The server itself is healthy; new connections work (a reader that does
  // read never trips the limit — the buffer drains as fast as it fills).
  Client healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server.port()).ok());
  QueryResult result;
  st = healthy.Query("SELECT count(*) FROM big", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows[0].count, 150000u);
}

TEST(ServerTest, IdleTimeoutClosesQuietConnections) {
  Table table = MakeTestTable(2000);
  ServerOptions options;
  options.idle_timeout_ms = 100;
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  server::ClientOptions copts;
  copts.recv_timeout_ms = 5000;
  Client quiet(copts);
  ASSERT_TRUE(quiet.Connect("127.0.0.1", server.port()).ok());
  // Send nothing: the idle sweep closes the connection, which the client
  // observes as EOF (kUnavailable), well before the recv timeout.
  std::vector<uint8_t> payload;
  FrameType type;
  Status st = quiet.ReadFrameInto(&payload, &type);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();

  // An active connection is not idle: pings reset the clock.
  Client active(copts);
  ASSERT_TRUE(active.Connect("127.0.0.1", server.port()).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(active.Ping(static_cast<uint64_t>(i)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  QueryResult result;
  st = active.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(ServerTest, MidFrameReadTimeoutClosesConnection) {
  // A frame that starts but never finishes (a torn client, or a slowloris)
  // is cut off by the mid-frame read deadline — much shorter than the idle
  // timeout, because a wellformed peer finishes a started frame quickly.
  Table table = MakeTestTable(2000);
  ServerOptions options;
  options.frame_read_timeout_ms = 100;
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  uint64_t timeouts_before =
      obs::Counter::Get("server.timeouts_frame_read").value();
  server::ClientOptions copts;
  copts.recv_timeout_ms = 5000;
  Client torn(copts);
  ASSERT_TRUE(torn.Connect("127.0.0.1", server.port()).ok());
  std::vector<uint8_t> frame =
      server::EncodeQueryFrame("SELECT count(*) FROM t");
  frame.resize(frame.size() / 2);  // ...and the rest never comes
  ASSERT_TRUE(torn.SendRaw(frame).ok());

  std::vector<uint8_t> payload;
  FrameType type;
  Status st = torn.ReadFrameInto(&payload, &type);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_GT(obs::Counter::Get("server.timeouts_frame_read").value(),
            timeouts_before);
}

TEST(ServerTest, PingBypassesAdmission) {
  // Liveness must stay observable under saturation: with the only
  // execution slot held and a query queued behind it, a Ping is answered
  // by the IO thread immediately.
  Table table = MakeTestTable(2000);
  Gate gate;
  gate.Arm();
  ServerOptions options;
  options.admission.max_concurrent_queries = 1;
  options.before_execute_hook = [&gate](QueryContext*) { gate.Enter(); };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client running, waiting, prober;
  ASSERT_TRUE(running.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(waiting.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(prober.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(running.SendQuery("SELECT count(*) FROM t").ok());
  gate.WaitEntered();
  ASSERT_TRUE(waiting.SendQuery("SELECT count(*) FROM t").ok());
  while (server.admission().queued() == 0) std::this_thread::yield();

  Status st = prober.Ping(0xbeef);
  EXPECT_TRUE(st.ok()) << st.ToString();

  gate.Release();
  EXPECT_TRUE(running.ReadQueryResponse(nullptr, nullptr).ok());
  EXPECT_TRUE(waiting.ReadQueryResponse(nullptr, nullptr).ok());
}

TEST(ServerTest, ShedsLowBandUnderMemoryPressure) {
  // With the soft memory limit below what the process already holds (the
  // test table), the shed policy rejects low-band queries with
  // kUnavailable + a retry-after hint, keeps serving the normal band, and
  // raises the degraded flag on replies.
  Table table = MakeTestTable(2000);
  ServerOptions options;
  options.soft_memory_limit_bytes = 1;
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.degraded());

  Client low, normal;
  ASSERT_TRUE(low.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(normal.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(low.Set("priority", "low").ok());

  QueryResult result;
  Status st = low.Query("SELECT count(*) FROM t", &result);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_NE(st.message().find("shed"), std::string::npos) << st.ToString();
  EXPECT_GT(low.last_retry_after_ms(), 0u);

  // Shedding is rejection, not teardown: the same session still runs
  // queries once it leaves the low band.
  ASSERT_TRUE(low.Set("priority", "normal").ok());
  st = low.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();

  QueryStatsWire stats;
  st = normal.Query("SELECT count(*) FROM t", &result, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows[0].count, 2000u);
  EXPECT_TRUE(stats.degraded);
}

TEST(ServerTest, DrainingRejectsNewQueriesAsUnavailable) {
  // While a drain waits on a running query, freshly submitted queries are
  // rejected with kUnavailable and a retry-after hint — the client should
  // go elsewhere, not queue behind a shutdown.
  Table table = MakeTestTable(2000);
  Gate gate;
  gate.Arm();
  ServerOptions options;
  options.before_execute_hook = [&gate](QueryContext*) { gate.Enter(); };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client running, late;
  ASSERT_TRUE(running.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(late.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(running.SendQuery("SELECT count(*) FROM t").ok());
  gate.WaitEntered();

  std::thread drainer([&server] { server.Shutdown(); });
  // Shutdown flips to draining before it blocks on the running query; give
  // it a beat, then submit on the still-open second connection.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  QueryResult result;
  Status st = late.Query("SELECT count(*) FROM t", &result);
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.ToString();
  EXPECT_NE(st.message().find("shutting down"), std::string::npos);
  EXPECT_GT(late.last_retry_after_ms(), 0u);

  gate.Release();
  st = running.ReadQueryResponse(&result, nullptr);
  drainer.join();
  ASSERT_TRUE(st.ok()) << st.ToString();
}

}  // namespace
}  // namespace bipie
