// The query service end to end (DESIGN.md §14): SQL over the framed
// protocol against a live loopback server. Covers session settings
// isolation, the in-flight-query rule, mid-query cancel frames, deadline
// expiry while queued, admission rejection over the wire, hostile framing
// (oversized / truncated / garbage), memory-limit errors that keep the
// connection, and session-tracker balance after queries drain.
#include "server/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/memory_tracker.h"
#include "server/client.h"
#include "server/protocol.h"
#include "storage/table.h"

namespace bipie {
namespace {

using server::Client;
using server::FrameType;
using server::QueryStatsWire;
using server::Server;
using server::ServerOptions;

Table MakeTestTable(size_t rows = 20000) {
  Table table({{"g", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"v", ColumnType::kInt64, EncodingChoice::kBitPacked}});
  TableAppender app(&table, 4096);
  for (size_t i = 0; i < rows; ++i) {
    app.AppendRow({static_cast<int64_t>(i % 4), static_cast<int64_t>(i % 7)});
  }
  app.Flush();
  return table;
}

// Blocks queries between admission grant and execution, so tests can land
// frames (Cancel) or hold the admission slot at a deterministic point.
class Gate {
 public:
  void Enter() {
    std::unique_lock<std::mutex> lock(mu_);
    if (!armed_) return;
    ++entered_;
    cv_.notify_all();
    cv_.wait(lock, [this] { return released_; });
  }
  void Arm() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = true;
  }
  void WaitEntered(int count = 1) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, count] { return entered_ >= count; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = false;
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool armed_ = false;
  bool released_ = false;
  int entered_ = 0;
};

TEST(ServerTest, QueryRoundTrip) {
  Table table = MakeTestTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  QueryResult result;
  QueryStatsWire stats;
  Status st = client.Query(
      "SELECT g, count(*), sum(v) FROM t WHERE v >= 1 GROUP BY g", &result,
      &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(result.rows.size(), 4u);
  ASSERT_EQ(result.group_column_names.size(), 1u);
  EXPECT_EQ(result.group_column_names[0], "g");
  uint64_t total = 0;
  for (const ResultRow& row : result.rows) total += row.count;
  EXPECT_EQ(total, 20000u - 20000u / 7u - 1u);  // rows with v == 0 filtered
  EXPECT_EQ(stats.rows_scanned, 20000u);
  EXPECT_GT(stats.exec_ns, 0u);
  // Uncontended: the admission grant is inline, so the measured queue wait
  // is dispatch overhead (microseconds), not real queueing.
  EXPECT_LT(stats.queue_wait_ns, uint64_t{50} * 1000 * 1000);
}

TEST(ServerTest, ExplainOverWire) {
  Table table = MakeTestTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  std::string text;
  Status st = client.Explain("EXPLAIN SELECT count(*) FROM t", &text);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(text.find("BIPie plan"), std::string::npos);
}

TEST(ServerTest, ErrorsKeepTheSessionAlive) {
  Table table = MakeTestTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Parse error (positioned), unknown table, unknown setting: all are
  // structured Error frames, none of them drops the connection.
  QueryResult ignored;
  Status st = client.Query("SELECT FROM t", &ignored);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("parse error at byte"), std::string::npos);

  st = client.Query("SELECT count(*) FROM nope", &ignored);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("unknown table"), std::string::npos);

  st = client.Set("no_such_setting", "1");
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);

  QueryResult result;
  st = client.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].count, 20000u);
}

TEST(ServerTest, SessionSettingsAreIsolated) {
  Table table = MakeTestTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client starved, healthy;
  ASSERT_TRUE(starved.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server.port()).ok());

  // Session A sets an impossible memory limit; session B must not see it.
  ASSERT_TRUE(starved.Set("memory_limit_bytes", "1").ok());

  QueryResult result;
  Status st = starved.Query("SELECT g, count(*), sum(v) FROM t GROUP BY g",
                            &result);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);

  st = healthy.Query("SELECT g, count(*), sum(v) FROM t GROUP BY g", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows.size(), 4u);

  // The memory-limit failure was a clean Error frame: session A's
  // connection survives and works again once the delta is lifted.
  ASSERT_TRUE(starved.Set("memory_limit_bytes", "0").ok());
  result = QueryResult{};
  st = starved.Query("SELECT g, count(*), sum(v) FROM t GROUP BY g", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows.size(), 4u);
}

TEST(ServerTest, MidQueryCancelFrame) {
  Table table = MakeTestTable();
  Gate gate;
  gate.Arm();
  std::atomic<QueryContext*> held_ctx{nullptr};
  ServerOptions options;
  options.before_execute_hook = [&](QueryContext* ctx) {
    held_ctx.store(ctx);
    gate.Enter();
  };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.SendQuery("SELECT g, count(*) FROM t GROUP BY g").ok());
  gate.WaitEntered();
  // The query is held right before execution; the Cancel frame is
  // processed by the IO thread while the worker is parked. Wait for the
  // cancellation to latch before resuming, or the query could finish
  // before the frame crosses the loopback.
  ASSERT_TRUE(client.SendCancel().ok());
  while (!held_ctx.load()->is_cancelled()) std::this_thread::yield();
  gate.Release();

  QueryResult result;
  Status st = client.ReadQueryResponse(&result, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);

  // The session survives the cancellation.
  st = client.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows[0].count, 20000u);
}

TEST(ServerTest, OnlyOneQueryInFlightPerConnection) {
  Table table = MakeTestTable();
  Gate gate;
  gate.Arm();
  ServerOptions options;
  options.before_execute_hook = [&gate](QueryContext*) { gate.Enter(); };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(client.SendQuery("SELECT count(*) FROM t").ok());
  gate.WaitEntered();
  // Second query while the first is held: immediate rejection frame (the
  // first query's frames come later, so the rejection is read first).
  ASSERT_TRUE(client.SendQuery("SELECT count(*) FROM t").ok());
  Status st = client.ReadQueryResponse(nullptr, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("already in flight"), std::string::npos);

  gate.Release();
  QueryResult result;
  st = client.ReadQueryResponse(&result, nullptr);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows[0].count, 20000u);
}

TEST(ServerTest, DeadlineExpiryWhileQueued) {
  Table table = MakeTestTable();
  Gate gate;
  gate.Arm();
  ServerOptions options;
  options.admission.max_concurrent_queries = 1;
  options.admission.max_queued_queries = 4;
  options.before_execute_hook = [&gate](QueryContext*) { gate.Enter(); };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client holder, queued;
  ASSERT_TRUE(holder.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(queued.Connect("127.0.0.1", server.port()).ok());

  // The holder occupies the only slot, parked at the gate.
  ASSERT_TRUE(holder.SendQuery("SELECT count(*) FROM t").ok());
  gate.WaitEntered();

  // The queued query's 50ms deadline expires in the admission queue; the
  // IO loop's Tick fails it with kCancelled without it ever running.
  ASSERT_TRUE(queued.Set("deadline_ms", "50").ok());
  Status st = queued.Query("SELECT count(*) FROM t", nullptr);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);

  gate.Release();
  QueryResult result;
  st = holder.ReadQueryResponse(&result, nullptr);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows[0].count, 20000u);
}

TEST(ServerTest, AdmissionRejectionOverWire) {
  Table table = MakeTestTable();
  Gate gate;
  gate.Arm();
  ServerOptions options;
  options.admission.max_concurrent_queries = 1;
  options.admission.max_queued_queries = 0;  // no queue: reject outright
  options.before_execute_hook = [&gate](QueryContext*) { gate.Enter(); };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client holder, rejected;
  ASSERT_TRUE(holder.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(rejected.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(holder.SendQuery("SELECT count(*) FROM t").ok());
  gate.WaitEntered();

  Status st = rejected.Query("SELECT count(*) FROM t", nullptr);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.message().find("admission queue full"), std::string::npos);

  gate.Release();
  ASSERT_TRUE(holder.ReadQueryResponse(nullptr, nullptr).ok());
}

TEST(ServerTest, HostileFramesGetStructuredErrors) {
  Table table = MakeTestTable();
  Server server(ServerOptions{});
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  {
    // Oversized length prefix: error frame, then the connection drops.
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    std::vector<uint8_t> evil = {0xff, 0xff, 0xff, 0xff, /*type=*/1};
    ASSERT_TRUE(client.SendRaw(evil).ok());
    std::vector<uint8_t> payload;
    FrameType type;
    ASSERT_TRUE(client.ReadFrameInto(&payload, &type).ok());
    EXPECT_EQ(type, FrameType::kError);
    EXPECT_FALSE(client.ReadFrameInto(&payload, &type).ok());  // closed
  }
  {
    // Unknown frame type.
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    std::vector<uint8_t> evil = {0, 0, 0, 0, /*type=*/0xee};
    ASSERT_TRUE(client.SendRaw(evil).ok());
    std::vector<uint8_t> payload;
    FrameType type;
    ASSERT_TRUE(client.ReadFrameInto(&payload, &type).ok());
    EXPECT_EQ(type, FrameType::kError);
  }
  {
    // Garbage payload: a Query frame whose inner string length lies about
    // the remaining bytes.
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    std::vector<uint8_t> evil = {6, 0, 0, 0, /*type=*/1,
                                 /*strlen=100:*/ 100, 0, 0, 0, 'h', 'i'};
    ASSERT_TRUE(client.SendRaw(evil).ok());
    std::vector<uint8_t> payload;
    FrameType type;
    ASSERT_TRUE(client.ReadFrameInto(&payload, &type).ok());
    EXPECT_EQ(type, FrameType::kError);
  }
  {
    // Truncated frame followed by client disconnect: the server just
    // drops the half-read stream.
    Client client;
    ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
    ASSERT_TRUE(client.SendRaw({50, 0, 0, 0, 1, 'S', 'E'}).ok());
    client.Close();
  }

  // After all of the hostility the server still serves clean sessions.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  QueryResult result;
  Status st = client.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(result.rows[0].count, 20000u);
}

TEST(ServerTest, SessionTrackerBalancesAfterQueries) {
  Table table = MakeTestTable();
  // The session tracker lives inside the Connection, which the IO thread
  // frees at teardown — so inspect it from the worker thread (where the
  // connection is pinned by the running query) and ship plain values out.
  std::atomic<int> hook_calls{0};
  std::atomic<bool> parent_is_session{false};
  std::atomic<uint64_t> session_used_at_second_query{~uint64_t{0}};
  ServerOptions options;
  options.before_execute_hook = [&](QueryContext* ctx) {
    // The query tracker's parent is the connection's session tracker.
    MemoryTracker* session = ctx->memory_tracker().parent();
    if (hook_calls.fetch_add(1) == 1) {
      // Second query on the same session: everything the first query
      // charged against the session chain must be back — the invariant
      // the graceful drain relies on.
      parent_is_session.store(session != nullptr &&
                              session != &MemoryTracker::Process());
      session_used_at_second_query.store(session->used());
    }
  };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  QueryResult result;
  QueryStatsWire stats;
  Status st = client.Query("SELECT g, count(*), sum(v) FROM t GROUP BY g",
                           &result, &stats);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_GT(stats.peak_memory_bytes, 0u);

  st = client.Query("SELECT count(*) FROM t", &result);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(hook_calls.load(), 2);
  EXPECT_TRUE(parent_is_session.load());
  EXPECT_EQ(session_used_at_second_query.load(), 0u);
}

TEST(ServerTest, GracefulShutdownFinishesRunningQueries) {
  Table table = MakeTestTable();
  Gate gate;
  gate.Arm();
  ServerOptions options;
  options.admission.max_concurrent_queries = 1;
  options.admission.max_queued_queries = 4;
  options.before_execute_hook = [&gate](QueryContext*) { gate.Enter(); };
  Server server(options);
  server.AddTable("t", &table);
  ASSERT_TRUE(server.Start().ok());

  Client running, waiting;
  ASSERT_TRUE(running.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(waiting.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(running.SendQuery("SELECT g, count(*) FROM t GROUP BY g").ok());
  gate.WaitEntered();
  ASSERT_TRUE(waiting.SendQuery("SELECT count(*) FROM t").ok());
  while (server.admission().queued() == 0) std::this_thread::yield();

  // Drain on another thread: it must cancel the queued query, wait for the
  // running one (parked at the gate) and only then return.
  std::thread drainer([&server] { server.Shutdown(); });
  // The queued query is failed promptly, before the drain completes.
  Status st = waiting.ReadQueryResponse(nullptr, nullptr);
  EXPECT_EQ(st.code(), StatusCode::kCancelled);

  gate.Release();
  QueryResult result;
  st = running.ReadQueryResponse(&result, nullptr);
  drainer.join();  // before any assert: a failure must not leak the thread
  ASSERT_TRUE(st.ok()) << st.ToString();  // finished and flushed, not cut off
  EXPECT_EQ(result.rows.size(), 4u);
}

}  // namespace
}  // namespace bipie
