// Typed settings registry (DESIGN.md §13): declaration, strict parsing,
// range/allowed-value validation, and the environment fallback path that
// replaced raw strtoull (which silently wrapped "-1" and accepted "8abc").
#include "exec/query_settings.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "exec/query_context.h"

namespace bipie {
namespace {

TEST(QuerySettingsTest, RegistryDeclaresEverySetting) {
  const std::vector<SettingDef>& registry = QuerySettings::Registry();
  ASSERT_FALSE(registry.empty());
  for (const SettingDef& def : registry) {
    EXPECT_NE(def.name, nullptr);
    EXPECT_NE(def.doc, nullptr);
    EXPECT_GT(std::string(def.doc).size(), 0u) << def.name;
    EXPECT_EQ(QuerySettings::Find(def.name), &def);
  }
  EXPECT_EQ(QuerySettings::Find("no_such_setting"), nullptr);
}

TEST(QuerySettingsTest, DefaultsMatchRegistry) {
  QuerySettings settings;
  EXPECT_EQ(settings.num_threads(), 1u);
  EXPECT_EQ(settings.morsel_rows(), 0u);
  EXPECT_EQ(settings.memory_limit_bytes(), 0u);
  EXPECT_EQ(settings.memory_soft_limit_bytes(), 0u);
  EXPECT_EQ(settings.deadline_ms(), 0u);
  EXPECT_TRUE(settings.enable_segment_elimination());
  EXPECT_TRUE(settings.io_verify_checksums());
  EXPECT_TRUE(settings.io_validate());
  EXPECT_FALSE(settings.io_strict());
  EXPECT_EQ(settings.force_selection_strategy(), "");
  EXPECT_EQ(settings.force_aggregation_strategy(), "");
  // Named accessors and generic getters read the same storage.
  for (const SettingDef& def : QuerySettings::Registry()) {
    switch (def.type) {
      case SettingType::kUInt64:
        EXPECT_EQ(settings.GetUInt64(def.name), def.default_u64) << def.name;
        break;
      case SettingType::kBool:
        EXPECT_EQ(settings.GetBool(def.name), def.default_bool) << def.name;
        break;
      case SettingType::kString:
        EXPECT_EQ(settings.GetString(def.name), def.default_string)
            << def.name;
        break;
    }
  }
}

TEST(QuerySettingsTest, SetParsesAndValidates) {
  QuerySettings settings;
  EXPECT_TRUE(settings.Set("num_threads", "8").ok());
  EXPECT_EQ(settings.num_threads(), 8u);
  EXPECT_TRUE(settings.Set("memory_limit_bytes", "1048576").ok());
  EXPECT_EQ(settings.memory_limit_bytes(), 1048576u);
  EXPECT_TRUE(settings.Set("enable_segment_elimination", "false").ok());
  EXPECT_FALSE(settings.enable_segment_elimination());
  EXPECT_TRUE(settings.Set("io_strict", "on").ok());
  EXPECT_TRUE(settings.io_strict());
  EXPECT_TRUE(settings.Set("force_selection_strategy", "compact").ok());
  EXPECT_EQ(settings.force_selection_strategy(), "compact");
  EXPECT_TRUE(settings.Set("force_selection_strategy", "").ok());  // unset

  EXPECT_EQ(settings.Set("no_such_setting", "1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(settings.Set("num_threads", "-1").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(settings.Set("num_threads", "8abc").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(settings.Set("num_threads", "99999").code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(settings.Set("enable_segment_elimination", "maybe").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(settings.Set("force_selection_strategy", "fastest").code(),
            StatusCode::kOutOfRange);
  // Failed sets left prior values intact.
  EXPECT_EQ(settings.num_threads(), 8u);
  EXPECT_EQ(settings.force_selection_strategy(), "");
}

TEST(QuerySettingsTest, TypedSettersCheckTypeAndRange) {
  QuerySettings settings;
  EXPECT_TRUE(settings.SetUInt64("morsel_rows", 4096).ok());
  EXPECT_EQ(settings.morsel_rows(), 4096u);
  EXPECT_EQ(settings.SetUInt64("io_strict", 1).code(),
            StatusCode::kInvalidArgument);  // wrong type
  EXPECT_TRUE(settings.SetBool("io_strict", true).ok());
  EXPECT_TRUE(settings.io_strict());
  EXPECT_TRUE(
      settings.SetString("force_aggregation_strategy", "run-based").ok());
  EXPECT_EQ(settings.SetString("force_aggregation_strategy", "turbo").code(),
            StatusCode::kOutOfRange);
}

TEST(QuerySettingsTest, ParseUInt64Strict) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUInt64Strict("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUInt64Strict("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseUInt64Strict("", &v));
  EXPECT_FALSE(ParseUInt64Strict("-1", &v));
  EXPECT_FALSE(ParseUInt64Strict("+1", &v));
  EXPECT_FALSE(ParseUInt64Strict(" 1", &v));
  EXPECT_FALSE(ParseUInt64Strict("8abc", &v));
  EXPECT_FALSE(ParseUInt64Strict("0x10", &v));
  EXPECT_FALSE(ParseUInt64Strict("18446744073709551616", &v));  // overflow
}

TEST(QuerySettingsTest, ParseBoolStrict) {
  bool b = false;
  EXPECT_TRUE(ParseBoolStrict("true", &b));
  EXPECT_TRUE(b);
  EXPECT_TRUE(ParseBoolStrict("0", &b));
  EXPECT_FALSE(b);
  EXPECT_TRUE(ParseBoolStrict("on", &b));
  EXPECT_TRUE(b);
  EXPECT_TRUE(ParseBoolStrict("off", &b));
  EXPECT_FALSE(b);
  EXPECT_FALSE(ParseBoolStrict("TRUE", &b));
  EXPECT_FALSE(ParseBoolStrict("yes", &b));
  EXPECT_FALSE(ParseBoolStrict("", &b));
}

TEST(QuerySettingsTest, EnvUInt64SettingValidatesAndClamps) {
  // Each case uses its own variable: the malformed-value warning is
  // one-time per name, and these tests must not depend on ordering.
  ::unsetenv("BIPIE_TEST_ENV_ABSENT");
  EXPECT_EQ(EnvUInt64Setting("BIPIE_TEST_ENV_ABSENT", 7, 0, 100), 7u);

  ::setenv("BIPIE_TEST_ENV_GOOD", "42", 1);
  EXPECT_EQ(EnvUInt64Setting("BIPIE_TEST_ENV_GOOD", 7, 0, 100), 42u);

  // The two bugs the strict parser exists for: "-1" must not wrap to
  // 2^64-1, and trailing garbage must not be silently ignored.
  ::setenv("BIPIE_TEST_ENV_NEGATIVE", "-1", 1);
  EXPECT_EQ(EnvUInt64Setting("BIPIE_TEST_ENV_NEGATIVE", 7, 0, 100), 7u);
  ::setenv("BIPIE_TEST_ENV_GARBAGE", "8abc", 1);
  EXPECT_EQ(EnvUInt64Setting("BIPIE_TEST_ENV_GARBAGE", 7, 0, 100), 7u);

  ::setenv("BIPIE_TEST_ENV_HIGH", "5000", 1);
  EXPECT_EQ(EnvUInt64Setting("BIPIE_TEST_ENV_HIGH", 7, 0, 100), 100u);
  ::setenv("BIPIE_TEST_ENV_LOW", "1", 1);
  EXPECT_EQ(EnvUInt64Setting("BIPIE_TEST_ENV_LOW", 7, 4, 100), 4u);
}

TEST(QuerySettingsTest, ApplySettingsConfiguresTracker) {
  QueryContext context;
  ASSERT_TRUE(context.settings().Set("memory_limit_bytes", "65536").ok());
  ASSERT_TRUE(
      context.settings().Set("memory_soft_limit_bytes", "32768").ok());
  context.ApplySettings();
  EXPECT_EQ(context.memory_tracker().hard_limit(), 65536u);
  EXPECT_EQ(context.memory_tracker().soft_limit(), 32768u);
}

}  // namespace
}  // namespace bipie
