#include "fuzz_harness.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/hash_agg.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "core/scan.h"
#include "exec/query_context.h"
#include "sql/parser.h"
#include "storage/table.h"
#include "storage/table_io.h"
#include "tests/test_util.h"

namespace bipie::fuzz {

namespace {

// ---------------------------------------------------------------------------
// Case construction. Everything below must be a pure function of CaseParams:
// the shrinker relies on field overrides keeping the rest of the case stable.
// ---------------------------------------------------------------------------

struct BuiltCase {
  Table table;
  QuerySpec query;

  explicit BuiltCase(Schema schema) : table(std::move(schema)) {}
};

// Value domain of one generated aggregate/filter column.
struct ValueColumn {
  int64_t lo = 0;
  int64_t hi = 0;
  EncodingChoice encoding = EncodingChoice::kAuto;
};

std::string GroupString(int id) { return "grp" + std::to_string(id); }

Schema MakeFuzzSchema(const CaseParams& p, Rng* rng,
                      std::vector<ValueColumn>* value_cols,
                      bool* g1_is_string) {
  Schema schema;
  // Run-clustered cases pin the group columns to integer RLE — the shape the
  // run-level execution path admits; strings dictionary-encode and stay on
  // the row-level path.
  *g1_is_string = rng->NextBernoulli(0.5) && p.sorted_fraction <= 0;
  if (p.group_columns >= 1) {
    schema.push_back({"g1",
                      *g1_is_string ? ColumnType::kString : ColumnType::kInt64,
                      p.sorted_fraction > 0 ? EncodingChoice::kRle
                                            : EncodingChoice::kDictionary});
  }
  if (p.group_columns >= 2) {
    schema.push_back({"g2", ColumnType::kInt64,
                      rng->NextBernoulli(0.3) || p.sorted_fraction > 0
                          ? EncodingChoice::kRle
                          : EncodingChoice::kDictionary});
  }
  // Three aggregate/filter value columns spanning the encoding and bit-width
  // matrix. Dictionary is only forced when the domain provably fits the
  // 2^16-entry cap; the other encodings take any range.
  for (int c = 0; c < 3; ++c) {
    ValueColumn vc;
    const int bits = 1 + static_cast<int>(rng->NextBounded(40));
    const int64_t base =
        rng->NextInRange(-(int64_t{1} << 20), int64_t{1} << 20);
    vc.lo = base;
    vc.hi = base + (bits >= 62 ? (int64_t{1} << 40)
                               : std::max<int64_t>(0, (int64_t{1} << bits) - 1));
    switch (rng->NextBounded(6)) {
      case 0:
        vc.encoding = EncodingChoice::kBitPacked;
        break;
      case 1:
        vc.encoding = (vc.hi - vc.lo) < (1 << 12) ? EncodingChoice::kDictionary
                                                  : EncodingChoice::kAuto;
        break;
      case 2:
        vc.encoding = EncodingChoice::kDelta;
        break;
      case 3:
        vc.encoding = EncodingChoice::kRle;
        break;
      case 4:
        vc.encoding = EncodingChoice::kByteSliced;
        break;
      default:
        vc.encoding = EncodingChoice::kAuto;
        break;
    }
    value_cols->push_back(vc);
    schema.push_back(
        {"v" + std::to_string(c), ColumnType::kInt64, vc.encoding});
  }
  if (p.wide_bits > 0) {
    // Wide filter-only column: exercises 41..63-bit unpack/compare paths.
    // Never aggregated (a 2^62-magnitude sum would overflow int64 and turn
    // every plan into an overflow abort).
    ValueColumn vc;
    vc.lo = 0;
    vc.hi = (int64_t{1} << std::min(p.wide_bits, 62)) - 1;
    vc.encoding = EncodingChoice::kBitPacked;
    value_cols->push_back(vc);
    schema.push_back({"w", ColumnType::kInt64, EncodingChoice::kBitPacked});
  }
  return schema;
}

BuiltCase BuildCase(const CaseParams& p) {
  Rng rng(p.seed * 6364136223846793005ULL + 1442695040888963407ULL);
  std::vector<ValueColumn> value_cols;
  bool g1_is_string = false;
  BuiltCase built(MakeFuzzSchema(p, &rng, &value_cols, &g1_is_string));
  Table& table = built.table;
  QuerySpec& query = built.query;

  const int g2_card = 1 + static_cast<int>(rng.NextBounded(8));
  const size_t first_value_col = static_cast<size_t>(p.group_columns);

  TableAppender app(&table, std::max<size_t>(64, p.segment_rows));
  std::vector<int64_t> ints(table.num_columns(), 0);
  std::vector<std::string> strings(table.num_columns());
  // Run-clustered generation: group and RLE value columns cycle through
  // their domains in runs of ~sorted_fraction * 8192 rows (staggered per
  // column so run edges rarely coincide), long enough to cross batch,
  // segment and morsel boundaries at the default sizes.
  const size_t run_len =
      p.sorted_fraction > 0
          ? std::max<size_t>(1, static_cast<size_t>(p.sorted_fraction * 8192))
          : 0;
  for (size_t i = 0; i < p.rows; ++i) {
    if (p.group_columns >= 1) {
      const int g = run_len > 0
                        ? static_cast<int>((i / run_len) %
                                           static_cast<size_t>(p.group_card))
                        : static_cast<int>(rng.NextBounded(p.group_card));
      if (g1_is_string) {
        strings[0] = GroupString(g);
      } else {
        ints[0] = 100 + g;
      }
    }
    if (p.group_columns >= 2) {
      ints[1] = run_len > 0
                    ? -3 + static_cast<int64_t>((i / (run_len + run_len / 2 +
                                                      1)) %
                                                static_cast<size_t>(g2_card))
                    : -3 + static_cast<int>(rng.NextBounded(g2_card));
    }
    for (size_t c = 0; c < value_cols.size(); ++c) {
      const ValueColumn& vc = value_cols[c];
      if (vc.encoding == EncodingChoice::kRle && run_len > 0) {
        // Deterministic staggered runs over a coarse grid of the domain.
        const size_t phase = (i + c * 37) / std::max<size_t>(1, run_len / 2);
        ints[first_value_col + c] =
            std::min(vc.hi, vc.lo + static_cast<int64_t>(phase % 23) *
                                        std::max<int64_t>(
                                            1, (vc.hi - vc.lo) / 23));
        continue;
      }
      // RLE-friendly runs now and then, else uniform over the domain.
      if (vc.encoding == EncodingChoice::kRle && rng.NextBernoulli(0.9) &&
          i > 0) {
        continue;  // keep previous value -> longer runs
      }
      ints[first_value_col + c] = rng.NextInRange(vc.lo, vc.hi);
    }
    app.AppendRow(ints, strings);
  }
  app.Flush();

  if (p.delete_frac > 0 && table.num_rows() > 0) {
    const size_t dels =
        static_cast<size_t>(p.delete_frac * static_cast<double>(p.rows));
    for (size_t d = 0; d < dels; ++d) {
      const size_t seg = rng.NextBounded(table.num_segments());
      table.mutable_segment(seg).DeleteRow(
          rng.NextBounded(table.segment(seg).num_rows()));
    }
  }

  // --- query ---------------------------------------------------------------
  if (p.group_columns >= 1) query.group_by.push_back("g1");
  if (p.group_columns >= 2) query.group_by.push_back("g2");

  query.aggregates.push_back(AggregateSpec::Count());
  const char* value_names[3] = {"v0", "v1", "v2"};
  for (int a = 0; a < p.num_aggs; ++a) {
    const char* col = value_names[rng.NextBounded(3)];
    switch (rng.NextBounded(6)) {
      case 0:
        query.aggregates.push_back(AggregateSpec::Sum(col));
        break;
      case 1:
        query.aggregates.push_back(AggregateSpec::Avg(col));
        break;
      case 2:
        query.aggregates.push_back(AggregateSpec::Min(col));
        break;
      case 3:
        query.aggregates.push_back(AggregateSpec::Max(col));
        break;
      default: {
        const int c0 = table.FindColumn(value_names[rng.NextBounded(3)]);
        const int c1 = table.FindColumn(col);
        query.aggregates.push_back(AggregateSpec::SumExpr(Expr::Add(
            Expr::Mul(Expr::Column(c0),
                      Expr::Constant(1 + static_cast<int64_t>(
                                             rng.NextBounded(50)))),
            Expr::Column(c1))));
        break;
      }
    }
  }

  for (int f = 0; f < p.num_filters; ++f) {
    // First filter aims at target_selectivity via the uniform-domain
    // quantile; later conjuncts and special forms scatter around it.
    if (f == 0 && g1_is_string && p.group_columns >= 1 &&
        rng.NextBernoulli(0.15)) {
      query.filters.emplace_back(
          "g1", CompareOp::kEq,
          GroupString(static_cast<int>(rng.NextBounded(p.group_card))));
      continue;
    }
    const size_t vi = rng.NextBounded(value_cols.size());
    const ValueColumn& vc = value_cols[vi];
    const std::string name = vi < 3 ? value_names[vi] : "w";
    const double span = static_cast<double>(vc.hi - vc.lo);
    const double q = f == 0 ? p.target_selectivity
                            : 0.2 + 0.6 * rng.NextDouble();
    const int64_t quantile =
        vc.lo + static_cast<int64_t>(q * span);
    switch (rng.NextBounded(5)) {
      case 0:
        query.filters.emplace_back(name, CompareOp::kLe, quantile);
        break;
      case 1:
        query.filters.emplace_back(name, CompareOp::kGt, quantile);
        break;
      case 2:
        query.filters.push_back(ColumnPredicate::Between(
            name, vc.lo + static_cast<int64_t>(0.5 * (1.0 - q) * span),
            vc.hi - static_cast<int64_t>(0.5 * (1.0 - q) * span)));
        break;
      case 3:
        query.filters.emplace_back(name, CompareOp::kNe,
                                   rng.NextInRange(vc.lo, vc.hi));
        break;
      default:
        query.filters.emplace_back(name, CompareOp::kEq,
                                   rng.NextInRange(vc.lo, vc.hi));
        break;
    }
  }
  return built;
}

// ---------------------------------------------------------------------------
// Result comparison.
// ---------------------------------------------------------------------------

std::string GroupValueToString(const GroupValue& v) {
  return v.is_string ? "\"" + v.string_value + "\""
                     : std::to_string(v.int_value);
}

std::string RowToString(const ResultRow& row) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < row.group.size(); ++i) {
    os << (i ? "," : "") << GroupValueToString(row.group[i]);
  }
  os << "] count=" << row.count << " sums=(";
  for (size_t i = 0; i < row.sums.size(); ++i) {
    os << (i ? "," : "") << row.sums[i];
  }
  os << ")";
  return os.str();
}

// Exact row-by-row diff (both engines emit rows sorted by group value).
bool ResultsAgree(const QueryResult& got, const QueryResult& expected,
                  const std::string& plan, std::string* error) {
  if (got.rows.size() != expected.rows.size()) {
    *error = plan + ": row count " + std::to_string(got.rows.size()) +
             " != oracle " + std::to_string(expected.rows.size());
    return false;
  }
  for (size_t r = 0; r < got.rows.size(); ++r) {
    const ResultRow& g = got.rows[r];
    const ResultRow& e = expected.rows[r];
    if (g.group != e.group || g.count != e.count || g.sums != e.sums) {
      *error = plan + ": row " + std::to_string(r) + " got " +
               RowToString(g) + " oracle " + RowToString(e);
      return false;
    }
  }
  return true;
}

struct Plan {
  std::string name;
  ScanOptions options;
};

std::vector<Plan> MakePlans(const CaseParams& p) {
  std::vector<Plan> plans;
  plans.push_back({"adaptive/t1", {}});
  if (p.num_threads == 0) {
    Plan pool{"adaptive/pool", {}};
    pool.options.num_threads = 0;
    plans.push_back(std::move(pool));
  } else if (p.num_threads > 1) {
    Plan mt{"adaptive/t" + std::to_string(p.num_threads), {}};
    mt.options.num_threads = p.num_threads;
    plans.push_back(std::move(mt));
  }
  const SelectionStrategy sels[3] = {SelectionStrategy::kGather,
                                     SelectionStrategy::kCompact,
                                     SelectionStrategy::kSpecialGroup};
  const AggregationStrategy aggs[6] = {
      AggregationStrategy::kScalar,      AggregationStrategy::kInRegister,
      AggregationStrategy::kSortBased,   AggregationStrategy::kMultiAggregate,
      AggregationStrategy::kCheckedScalar, AggregationStrategy::kRunBased};
  // Full override matrix: each strategy forced alone and every pairwise
  // combination (sel_idx/agg_idx of -1 = adaptive for that dimension).
  // Forced kRunBased rejects with kNotSupported off run-shaped data (and
  // under any forced selection strategy); on sorted_fraction cases it runs
  // the whole run pipeline differentially against the oracle.
  for (int s = -1; s < 3; ++s) {
    for (int a = -1; a < 6; ++a) {
      if (s < 0 && a < 0) continue;  // pure adaptive already covered
      Plan plan;
      plan.name = std::string("forced ") +
                  (s < 0 ? "auto" : SelectionStrategyName(sels[s])) + "+" +
                  (a < 0 ? "auto" : AggregationStrategyName(aggs[a]));
      if (s >= 0) plan.options.overrides.selection = sels[s];
      if (a >= 0) plan.options.overrides.aggregation = aggs[a];
      plans.push_back(std::move(plan));
    }
  }
  // Byteslice kernel differential: forced-on runs the plane kernels
  // wherever a byte-sliced filter column exists (rejecting with
  // kNotSupported when none does), forced-off pins the assemble-then-
  // compare fallback — both against the same oracle as every other plan.
  for (const bool on : {true, false}) {
    Plan plan;
    plan.name = std::string("forced byteslice-") + (on ? "on" : "off");
    plan.options.overrides.byteslice = on;
    plans.push_back(std::move(plan));
  }
  // Cost-model differential (DESIGN.md §17): adaptive plans with the model
  // consulted for strategy choice and byteslice admission, under the same
  // execution models as the plain adaptive plan. The model only redirects
  // among correct strategies, so results must stay byte-identical.
  if (p.cost_model != 0) {
    const CostModelMode mode = p.cost_model == 1 ? CostModelMode::kOn
                                                 : CostModelMode::kAdaptive;
    const std::string mode_name = CostModelModeName(mode);
    Plan t1{"cost-model-" + mode_name + "/t1", {}};
    t1.options.overrides.cost_model = mode;
    plans.push_back(std::move(t1));
    if (p.num_threads == 0) {
      Plan pool{"cost-model-" + mode_name + "/pool", {}};
      pool.options.num_threads = 0;
      pool.options.overrides.cost_model = mode;
      plans.push_back(std::move(pool));
    } else if (p.num_threads > 1) {
      Plan mt{"cost-model-" + mode_name + "/t" + std::to_string(p.num_threads),
              {}};
      mt.options.num_threads = p.num_threads;
      mt.options.overrides.cost_model = mode;
      plans.push_back(std::move(mt));
    }
  }
  return plans;
}

}  // namespace

std::string CaseParams::ToString() const {
  std::ostringstream os;
  os << "seed=" << seed << " rows=" << rows
     << " segment_rows=" << segment_rows
     << " group_columns=" << group_columns << " group_card=" << group_card
     << " num_aggs=" << num_aggs << " num_filters=" << num_filters
     << " delete_frac=" << delete_frac
     << " target_selectivity=" << target_selectivity
     << " wide_bits=" << wide_bits << " num_threads=" << num_threads
     << " cancel_after=" << cancel_after
     << " failpoint_prob=" << failpoint_prob
     << " sorted_fraction=" << sorted_fraction
     << " memory_limit=" << memory_limit
     << " cost_model=" << cost_model;
  return os.str();
}

CaseParams MakeCaseParams(uint64_t seed) {
  Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
  CaseParams p;
  p.seed = seed;
  p.rows = 200 + rng.NextBounded(12000);
  p.segment_rows = 64 + rng.NextBounded(6000);
  p.group_columns = static_cast<int>(rng.NextBounded(3));
  // Cardinality sweep crosses the 255-group specialized envelope: ~1/6 of
  // cases land in 200..300, where (with two group columns) the combined
  // count forces the hash fallback and forced plans must reject cleanly.
  p.group_card = rng.NextBernoulli(0.17)
                     ? 200 + static_cast<int>(rng.NextBounded(101))
                     : 1 + static_cast<int>(rng.NextBounded(40));
  p.num_aggs = static_cast<int>(rng.NextBounded(5));
  p.num_filters = static_cast<int>(rng.NextBounded(4));
  p.delete_frac = rng.NextBernoulli(0.4) ? 0.12 * rng.NextDouble() : 0.0;
  // Selectivity sweep hits the exact endpoints (0 and 1) as well as the
  // interior, since strategy choice branches at both extremes.
  switch (rng.NextBounded(8)) {
    case 0: p.target_selectivity = 0.0; break;
    case 1: p.target_selectivity = 1.0; break;
    case 2: p.target_selectivity = 0.01; break;
    case 3: p.target_selectivity = 0.99; break;
    default: p.target_selectivity = rng.NextDouble(); break;
  }
  p.wide_bits =
      rng.NextBernoulli(0.3) ? 41 + static_cast<int>(rng.NextBounded(23)) : 0;
  // Execution model: shared morsel pool, inline, or legacy per-query
  // threads, weighted evenly so every model soaks the same case diversity.
  switch (rng.NextBounded(3)) {
    case 0: p.num_threads = 0; break;
    case 1: p.num_threads = 1; break;
    default: p.num_threads = 2 + rng.NextBounded(3); break;
  }
  // A quarter of cases also exercise mid-scan cancellation; small check
  // budgets land the trigger inside the scan rather than after it.
  p.cancel_after = rng.NextBernoulli(0.25)
                       ? 1 + static_cast<int64_t>(rng.NextBounded(48))
                       : 0;
  // A fifth of cases run with allocation-failure injection armed on the
  // morsel scratch path (only observable in BIPIE_ENABLE_FAILPOINTS builds;
  // params stay seed-portable across build flavours either way).
  p.failpoint_prob =
      rng.NextBernoulli(0.2) ? 0.02 + 0.28 * rng.NextDouble() : 0.0;
  // ~30% of cases are run-clustered, keeping the kRunBased differential
  // (including its morsel-boundary and deleted-row interactions) hot in
  // every fuzz job.
  p.sorted_fraction =
      rng.NextBernoulli(0.3) ? 0.05 + 0.95 * rng.NextDouble() : 0.0;
  // A fifth of cases run the memory-governance pass with a hard limit from
  // "fails immediately" (4 KiB) to "comfortably fits" (~4 MiB), so both the
  // kResourceExhausted path and the governed-success path stay hot.
  p.memory_limit =
      rng.NextBernoulli(0.2) ? 4096 + rng.NextBounded(uint64_t{1} << 22) : 0;
  // Cost-model consultation sweeps all three modes evenly, so model-driven
  // admission (strategy choice, byteslice, run pipeline) diffs against the
  // oracle across the whole shape matrix. Drawn last: earlier fields keep
  // their per-seed values from before the knob existed.
  p.cost_model = static_cast<int>(rng.NextBounded(3));
  return p;
}

bool ParseCaseParams(const std::string& text, CaseParams* out,
                     std::string* error) {
  CaseParams p;
  std::istringstream is(text);
  std::string token;
  while (is >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      *error = "malformed token (want key=value): " + token;
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    try {
      if (key == "seed") {
        p.seed = std::stoull(val);
      } else if (key == "rows") {
        p.rows = std::stoull(val);
      } else if (key == "segment_rows") {
        p.segment_rows = std::stoull(val);
      } else if (key == "group_columns") {
        p.group_columns = std::stoi(val);
      } else if (key == "group_card") {
        p.group_card = std::stoi(val);
      } else if (key == "num_aggs") {
        p.num_aggs = std::stoi(val);
      } else if (key == "num_filters") {
        p.num_filters = std::stoi(val);
      } else if (key == "delete_frac") {
        p.delete_frac = std::stod(val);
      } else if (key == "target_selectivity") {
        p.target_selectivity = std::stod(val);
      } else if (key == "wide_bits") {
        p.wide_bits = std::stoi(val);
      } else if (key == "num_threads") {
        p.num_threads = std::stoull(val);
      } else if (key == "cancel_after") {
        p.cancel_after = std::stoll(val);
      } else if (key == "failpoint_prob") {
        p.failpoint_prob = std::stod(val);
      } else if (key == "sorted_fraction") {
        p.sorted_fraction = std::stod(val);
      } else if (key == "memory_limit") {
        p.memory_limit = std::stoull(val);
      } else if (key == "cost_model") {
        p.cost_model = std::stoi(val);
      } else {
        *error = "unknown key: " + key;
        return false;
      }
    } catch (const std::exception&) {
      *error = "bad value for " + key + ": " + val;
      return false;
    }
  }
  *out = p;
  return true;
}

bool RunOneCase(const CaseParams& p, std::string* error) {
  const BuiltCase built = BuildCase(p);

  auto oracle = ExecuteQueryHashAgg(built.table, built.query);
  if (!oracle.ok()) {
    *error = "oracle failed: " + oracle.status().ToString();
    return false;
  }

  // Fault-injection slice: armed after the oracle (which must stay exact),
  // disarmed when this function returns. Every plan below must then produce
  // its complete exact result or report kResourceExhausted — an injected
  // allocation failure must never leak a partial aggregate.
  std::optional<ScopedFailpoint> inject;
  if (p.failpoint_prob > 0) {
    inject.emplace("scan/morsel_scratch_alloc", p.failpoint_prob, p.seed);
  }

  for (const Plan& plan : MakePlans(p)) {
    BIPieScan scan(built.table, built.query, plan.options);
    auto got = scan.Execute();
    if (!got.ok()) {
      const StatusCode code = got.status().code();
      const bool forced = plan.options.overrides.selection.has_value() ||
                          plan.options.overrides.aggregation.has_value() ||
                          plan.options.overrides.byteslice.has_value();
      // Forced plans may reject shapes outside their envelope; the checked
      // scalar path may abort instead of overflowing. Anything else is a
      // bug, as is a clean rejection from the adaptive plan (it must fall
      // back to hash aggregation instead).
      if (forced && code == StatusCode::kNotSupported) continue;
      if (code == StatusCode::kOverflowRisk) continue;
      if (p.failpoint_prob > 0 && code == StatusCode::kResourceExhausted) {
        continue;  // clean degradation under injected allocation failure
      }
      *error = plan.name + ": unexpected error " + got.status().ToString();
      return false;
    }
    // The stats-invariant oracle (tests/test_util.h): every successful scan
    // must satisfy the accounting identities, whatever strategies ran. This
    // subsumes the stale-stats-after-fallback check and adds the row/segment
    // conservation laws.
    const std::vector<std::string> stats_violations =
        test::StatsInvariants::Check(scan.stats(), built.query, built.table,
                                     &got.value());
    if (!stats_violations.empty()) {
      *error = plan.name + ": " +
               test::StatsInvariants::Describe(stats_violations);
      return false;
    }
    std::string diff;
    if (!ResultsAgree(got.value(), oracle.value(), plan.name, &diff)) {
      *error = diff;
      return false;
    }
  }

  // Cancellation pass: with a context that trips after p.cancel_after
  // checks, every execution model must either report kCancelled (or abort
  // with kOverflowRisk before the trigger) or — when the scan completed
  // before noticing the cancel — return the exact oracle result. A row
  // count or sum differing from the oracle means a partial result escaped.
  if (p.cancel_after > 0) {
    std::vector<size_t> models = {0, 1};
    if (p.num_threads > 1) models.push_back(p.num_threads);
    for (size_t threads : models) {
      QueryContext context;
      context.CancelAfterChecks(p.cancel_after);
      ScanOptions options;
      options.num_threads = threads;
      options.context = &context;
      const std::string plan_name =
          "cancel@" + std::to_string(p.cancel_after) + "/t" +
          std::to_string(threads);
      BIPieScan scan(built.table, built.query, options);
      auto got = scan.Execute();
      if (!got.ok()) {
        const StatusCode code = got.status().code();
        if (code == StatusCode::kCancelled ||
            code == StatusCode::kOverflowRisk) {
          continue;
        }
        if (p.failpoint_prob > 0 &&
            code == StatusCode::kResourceExhausted) {
          continue;
        }
        *error = plan_name + ": unexpected error " + got.status().ToString();
        return false;
      }
      std::string diff;
      if (!ResultsAgree(got.value(), oracle.value(), plan_name, &diff)) {
        *error = diff + " (partial result escaped a cancelled scan?)";
        return false;
      }
    }
  }

  // Memory-governance pass: with a per-query hard limit, every execution
  // model must return the complete exact result (when the working set
  // fits) or a structured kResourceExhausted — never a partial aggregate —
  // and the query tracker must be balanced at zero either way.
  if (p.memory_limit > 0) {
    std::vector<size_t> models = {0, 1};
    if (p.num_threads > 1) models.push_back(p.num_threads);
    for (size_t threads : models) {
      QueryContext context;
      if (!context.settings()
               .SetUInt64("memory_limit_bytes", p.memory_limit)
               .ok()) {
        *error = "memory_limit_bytes rejected " +
                 std::to_string(p.memory_limit);
        return false;
      }
      context.ApplySettings();
      ScanOptions options;
      options.num_threads = threads;
      options.context = &context;
      const std::string plan_name =
          "memlimit@" + std::to_string(p.memory_limit) + "/t" +
          std::to_string(threads);
      BIPieScan scan(built.table, built.query, options);
      auto got = scan.Execute();
      if (context.memory_tracker().used() != 0) {
        *error = plan_name + ": tracker balance " +
                 std::to_string(context.memory_tracker().used()) +
                 " bytes after Execute()";
        return false;
      }
      if (!got.ok()) {
        const StatusCode code = got.status().code();
        if (code == StatusCode::kResourceExhausted ||
            code == StatusCode::kOverflowRisk) {
          continue;
        }
        *error = plan_name + ": unexpected error " + got.status().ToString();
        return false;
      }
      std::string diff;
      if (!ResultsAgree(got.value(), oracle.value(), plan_name, &diff)) {
        *error = diff + " (partial result escaped a memory-limited scan?)";
        return false;
      }
    }
  }
  return true;
}

CaseParams Shrink(const CaseParams& p) {
  CaseParams best = p;
  std::string scratch;
  bool progress = true;
  while (progress) {
    progress = false;
    std::vector<CaseParams> candidates;
    auto add = [&](auto mutate) {
      CaseParams c = best;
      mutate(c);
      candidates.push_back(c);
    };
    if (best.rows > 64) add([](CaseParams& c) { c.rows /= 2; });
    if (best.segment_rows > 64) add([](CaseParams& c) { c.segment_rows /= 2; });
    if (best.num_filters > 0) add([](CaseParams& c) { c.num_filters--; });
    if (best.num_aggs > 0) add([](CaseParams& c) { c.num_aggs--; });
    if (best.group_columns > 0) add([](CaseParams& c) { c.group_columns--; });
    if (best.group_card > 1) add([](CaseParams& c) { c.group_card /= 2; });
    if (best.delete_frac > 0) add([](CaseParams& c) { c.delete_frac = 0; });
    if (best.wide_bits > 0) add([](CaseParams& c) { c.wide_bits = 0; });
    if (best.cancel_after > 0) add([](CaseParams& c) { c.cancel_after = 0; });
    if (best.failpoint_prob > 0) {
      add([](CaseParams& c) { c.failpoint_prob = 0; });
    }
    if (best.sorted_fraction > 0) {
      add([](CaseParams& c) { c.sorted_fraction = 0; });
    }
    if (best.memory_limit > 0) {
      add([](CaseParams& c) { c.memory_limit = 0; });
    }
    if (best.cost_model != 0) add([](CaseParams& c) { c.cost_model = 0; });
    if (best.num_threads != 1) add([](CaseParams& c) { c.num_threads = 1; });
    for (const CaseParams& c : candidates) {
      if (!RunOneCase(c, &scratch)) {  // still fails -> keep the reduction
        best = c;
        progress = true;
        break;
      }
    }
  }
  return best;
}

FuzzResult RunFuzz(uint64_t seed, uint64_t iters, double budget_seconds,
                   bool verbose) {
  const auto start = std::chrono::steady_clock::now();
  FuzzResult result;
  for (uint64_t i = 0; i < iters; ++i) {
    if (budget_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed >= budget_seconds) break;
    }
    const CaseParams p = MakeCaseParams(seed + i);
    ++result.iterations;
    std::string error;
    if (verbose) {
      std::fprintf(stderr, "[bipie_fuzz] seed %" PRIu64 ": %s\n", seed + i,
                   p.ToString().c_str());
    }
    if (RunOneCase(p, &error)) continue;
    ++result.failures;
    std::fprintf(stderr, "[bipie_fuzz] FAILURE at seed %" PRIu64 ": %s\n",
                 seed + i, error.c_str());
    std::fprintf(stderr, "[bipie_fuzz] shrinking...\n");
    result.first_failing = Shrink(p);
    std::string shrunk_error;
    if (!RunOneCase(result.first_failing, &shrunk_error)) {
      error = shrunk_error;
    }
    result.first_error = error;
    std::fprintf(stderr,
                 "[bipie_fuzz] minimal failing case: %s\n"
                 "[bipie_fuzz]   %s\n"
                 "[bipie_fuzz] replay: bipie_fuzz --replay '%s'\n",
                 result.first_failing.ToString().c_str(), error.c_str(),
                 result.first_failing.ToString().c_str());
    break;
  }
  return result;
}

// ---------------------------------------------------------------------------
// load_table mode.
// ---------------------------------------------------------------------------

namespace {

// Golden table for the load fuzzer: every encoding, a string dictionary,
// multiple segments, a liveness mask — small enough that thousands of
// load attempts per second are possible.
Table MakeLoadFuzzTable() {
  Table table({{"flag", ColumnType::kString},
               {"packed", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"dict", ColumnType::kInt64, EncodingChoice::kDictionary},
               {"runs", ColumnType::kInt64, EncodingChoice::kRle},
               {"mono", ColumnType::kInt64, EncodingChoice::kDelta},
               {"sliced", ColumnType::kInt64, EncodingChoice::kByteSliced}});
  TableAppender app(&table, 256);
  Rng rng(2718);
  const char* flags[3] = {"A", "N", "R"};
  for (size_t i = 0; i < 600; ++i) {
    app.AppendRow({0, rng.NextInRange(-500, 500),
                   100 * static_cast<int64_t>(rng.NextBounded(7)),
                   static_cast<int64_t>(i / 50),
                   static_cast<int64_t>(i * 5) + rng.NextInRange(0, 3),
                   rng.NextInRange(0, (int64_t{1} << 20) - 1)},
                  {flags[rng.NextBounded(3)], "", "", "", "", ""});
  }
  app.Flush();
  table.mutable_segment(0).DeleteRow(9);
  return table;
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  out->resize(static_cast<size_t>(std::ftell(f)));
  std::fseek(f, 0, SEEK_SET);
  const bool ok = std::fread(out->data(), 1, out->size(), f) == out->size();
  std::fclose(f);
  return ok;
}

bool WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = bytes.empty() ||
                  std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

// Load errors that the boundary is allowed (expected) to produce.
bool IsStructuredLoadError(StatusCode code) {
  return code == StatusCode::kDataLoss ||
         code == StatusCode::kInvalidArgument ||
         code == StatusCode::kNotSupported ||
         code == StatusCode::kResourceExhausted;
}

// Applies one seeded mutation recipe to `mutant`.
void MutateBytes(Rng* rng, std::vector<uint8_t>* mutant) {
  switch (rng->NextBounded(4)) {
    case 0: {  // byte flips
      const size_t flips = 1 + rng->NextBounded(16);
      for (size_t k = 0; k < flips && !mutant->empty(); ++k) {
        (*mutant)[rng->NextBounded(mutant->size())] ^=
            static_cast<uint8_t>(1 + rng->NextBounded(255));
      }
      break;
    }
    case 1:  // truncation
      mutant->resize(rng->NextBounded(mutant->size() + 1));
      break;
    case 2: {  // truncate, then flip inside what remains
      mutant->resize(rng->NextBounded(mutant->size() + 1));
      const size_t flips = 1 + rng->NextBounded(8);
      for (size_t k = 0; k < flips && !mutant->empty(); ++k) {
        (*mutant)[rng->NextBounded(mutant->size())] ^=
            static_cast<uint8_t>(1 + rng->NextBounded(255));
      }
      break;
    }
    default: {  // garbage extension (exercises trailing-bytes rejection)
      const size_t extra = 1 + rng->NextBounded(64);
      for (size_t k = 0; k < extra; ++k) {
        mutant->push_back(static_cast<uint8_t>(rng->NextBounded(256)));
      }
      break;
    }
  }
}

// One load-fuzz iteration; false (with *error filled) on a boundary breach.
bool RunOneLoadCase(uint64_t case_seed, const std::vector<uint8_t>& golden_v1,
                    const std::vector<uint8_t>& golden_v2,
                    const std::string& path, std::string* error) {
  Rng rng(case_seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  std::vector<uint8_t> mutant =
      rng.NextBernoulli(0.5) ? golden_v2 : golden_v1;
  MutateBytes(&rng, &mutant);
  if (!WriteFileBytes(path, mutant)) {
    *error = "cannot write mutant file: " + path;
    return false;
  }

  auto loaded = LoadTable(path);
  if (!loaded.ok()) {
    if (!IsStructuredLoadError(loaded.status().code())) {
      *error = "unstructured load error: " + loaded.status().ToString();
      return false;
    }
    return true;
  }
  // The mutant survived checksums and deep validation (e.g. the mutation
  // landed in a dictionary value and stayed within [min, max]): it must be
  // scannable end to end. The query may still reject cleanly — a mutated
  // schema can rename a column out from under it — but never with an
  // internal error, and never by crashing.
  QuerySpec query;
  query.group_by = {"flag"};
  query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("packed"),
                      AggregateSpec::Min("dict"), AggregateSpec::Max("runs")};
  query.filters.emplace_back("packed", CompareOp::kGe, int64_t{-100});
  // Byteslice filter: a mutated byte plane must either fail validation at
  // load (kDataLoss) or scan cleanly through the plane kernels.
  query.filters.emplace_back("sliced", CompareOp::kLt,
                             int64_t{1} << 19);
  auto result = ExecuteQuery(loaded.value(), query);
  if (!result.ok() && result.status().code() == StatusCode::kInternal) {
    *error = "internal error scanning loadable mutant: " +
             result.status().ToString();
    return false;
  }
  return true;
}

}  // namespace

LoadFuzzResult RunLoadTableFuzz(uint64_t seed, uint64_t iters,
                                double budget_seconds, bool verbose) {
  LoadFuzzResult result;
  const Table golden = MakeLoadFuzzTable();
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string path = std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
                           "/bipie_load_fuzz_" + std::to_string(seed) +
                           ".bipie";
  std::vector<uint8_t> golden_v1, golden_v2;
  SaveOptions v1;
  v1.format_version = 1;
  if (!SaveTable(golden, path, v1).ok() || !ReadFileBytes(path, &golden_v1) ||
      !SaveTable(golden, path).ok() || !ReadFileBytes(path, &golden_v2)) {
    result.failures = 1;
    result.first_error = "cannot materialize golden files at " + path;
    return result;
  }

  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) {
    if (budget_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed >= budget_seconds) break;
    }
    ++result.iterations;
    if (verbose) {
      std::fprintf(stderr, "[bipie_fuzz] load_table seed %" PRIu64 "\n",
                   seed + i);
    }
    std::string error;
    if (RunOneLoadCase(seed + i, golden_v1, golden_v2, path, &error)) {
      continue;
    }
    ++result.failures;
    result.first_failing_seed = seed + i;
    result.first_error = error;
    std::fprintf(stderr,
                 "[bipie_fuzz] load_table FAILURE at seed %" PRIu64
                 ": %s\n"
                 "[bipie_fuzz] replay: bipie_fuzz --mode load_table "
                 "--seed %" PRIu64 " --iters 1\n",
                 seed + i, error.c_str(), seed + i);
    break;
  }
  std::remove(path.c_str());
  return result;
}

// ---------------------------------------------------------------------------
// parse_sql mode: the untrusted-query boundary.
// ---------------------------------------------------------------------------

namespace {

// The schema the seed statements reference: one dictionary string group
// column and two integer value columns.
Table MakeSqlFuzzTable() {
  Table table({{"g", ColumnType::kString, EncodingChoice::kDictionary},
               {"v", ColumnType::kInt64, EncodingChoice::kBitPacked},
               {"w", ColumnType::kInt64, EncodingChoice::kAuto}});
  TableAppender app(&table, 512);
  const char* flags[3] = {"A", "N", "R"};
  for (size_t i = 0; i < 2000; ++i) {
    app.AppendRow({0, static_cast<int64_t>(i % 97),
                   static_cast<int64_t>(i % 11)},
                  {flags[i % 3], "", ""});
  }
  app.Flush();
  return table;
}

// Well-formed statements the mutator starts from, covering the whole
// supported grammar: grouping, arithmetic aggregates, string equality,
// comparison chains, BETWEEN, EXPLAIN.
constexpr const char* kSqlSeeds[] = {
    "SELECT g, count(*), sum(v) FROM t WHERE v >= 10 GROUP BY g",
    "SELECT count(*), sum(v * w + 2), min(w), max(v) FROM t",
    "SELECT g, count(*), avg(v) FROM t WHERE g = 'A' AND w < 9 GROUP BY g",
    "SELECT sum(v * (100 - w)) FROM t WHERE v BETWEEN 10 AND 80",
    "EXPLAIN SELECT g, count(*) FROM t WHERE w > 3 GROUP BY g",
    "SELECT count(*) FROM t WHERE v <= -1 AND w > -100000000000",
};

// Splice vocabulary: keywords, operators, literals on both sides of the
// overflow boundary, and fragments that tend to create unterminated strings
// or unbalanced parentheses.
constexpr const char* kSqlTokens[] = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AND", "BETWEEN", "EXPLAIN",
    "count(*)", "sum(", "min(", "max(", "avg(", ")", "(", ",", "*", "+",
    "-", "<=", ">=", "=", "<", ">", "'A'", "'", "g", "v", "w", "t", "0",
    "9223372036854775807", "99999999999999999999999999", ";",
};

std::string MutateSql(const std::string& base, Rng* rng) {
  std::string s = base;
  const int mutations = 1 + static_cast<int>(rng->NextBounded(4));
  for (int m = 0; m < mutations; ++m) {
    switch (rng->NextBounded(5)) {
      case 0:  // flip one byte
        if (!s.empty()) {
          s[rng->NextBounded(s.size())] =
              static_cast<char>(rng->Next() & 0xff);
        }
        break;
      case 1:  // truncate
        if (!s.empty()) s.resize(rng->NextBounded(s.size()));
        break;
      case 2:  // splice a token
        s.insert(rng->NextBounded(s.size() + 1),
                 kSqlTokens[rng->NextBounded(std::size(kSqlTokens))]);
        break;
      case 3:  // duplicate a slice
        if (s.size() >= 2) {
          const size_t at = rng->NextBounded(s.size() - 1);
          const size_t len = 1 + rng->NextBounded(s.size() - at - 1 + 1);
          const std::string slice = s.substr(at, len);
          s.insert(rng->NextBounded(s.size() + 1), slice);
        }
        break;
      default: {  // raw garbage bytes
        const size_t n = 1 + rng->NextBounded(8);
        std::string garbage;
        for (size_t i = 0; i < n; ++i) {
          garbage.push_back(static_cast<char>(rng->Next() & 0xff));
        }
        s.insert(rng->NextBounded(s.size() + 1), garbage);
        break;
      }
    }
  }
  return s;
}

// Escapes non-printable bytes so failure diagnostics survive a terminal.
std::string PrintableSql(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(c);
    } else {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x",
                    static_cast<unsigned char>(c));
      out += buf;
    }
  }
  return out;
}

bool RunOneSqlCase(uint64_t case_seed, const Table& table,
                   std::string* error) {
  Rng rng(case_seed * 0x9e3779b97f4a7c15ULL + 1);
  std::string sql;
  if (rng.NextBernoulli(0.05)) {
    // Pure garbage: no valid skeleton at all.
    const size_t n = rng.NextBounded(64);
    for (size_t i = 0; i < n; ++i) {
      sql.push_back(static_cast<char>(rng.Next() & 0xff));
    }
  } else {
    sql = MutateSql(kSqlSeeds[rng.NextBounded(std::size(kSqlSeeds))], &rng);
  }

  // The schema-free preparse (the server's first contact with the bytes)
  // must only ever reject with kInvalidArgument.
  auto pre = PreparseQuery(sql);
  if (!pre.ok() && pre.status().code() != StatusCode::kInvalidArgument) {
    *error = "preparse returned " + pre.status().ToString() +
             " for: " + PrintableSql(sql);
    return false;
  }

  auto parsed = ParseQuery(sql, table);
  if (!parsed.ok()) {
    if (parsed.status().code() != StatusCode::kInvalidArgument) {
      *error = "parse returned " + parsed.status().ToString() +
               " for: " + PrintableSql(sql);
      return false;
    }
    if (parsed.status().message().empty()) {
      *error = "parse rejected without context for: " + PrintableSql(sql);
      return false;
    }
    return true;
  }
  // The mutant parsed clean (e.g. the mutation landed in whitespace or a
  // literal): the resolved QuerySpec must execute without internal errors.
  auto result = ExecuteQuery(table, parsed.value().spec);
  if (!result.ok() && result.status().code() == StatusCode::kInternal) {
    *error = "internal error executing parsed mutant: " +
             result.status().ToString() + " for: " + PrintableSql(sql);
    return false;
  }
  return true;
}

}  // namespace

SqlFuzzResult RunParseSqlFuzz(uint64_t seed, uint64_t iters,
                              double budget_seconds, bool verbose) {
  SqlFuzzResult result;
  const Table table = MakeSqlFuzzTable();
  const auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < iters; ++i) {
    if (budget_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed >= budget_seconds) break;
    }
    ++result.iterations;
    if (verbose) {
      std::fprintf(stderr, "[bipie_fuzz] parse_sql seed %" PRIu64 "\n",
                   seed + i);
    }
    std::string error;
    if (RunOneSqlCase(seed + i, table, &error)) continue;
    ++result.failures;
    result.first_failing_seed = seed + i;
    result.first_error = error;
    std::fprintf(stderr,
                 "[bipie_fuzz] parse_sql FAILURE at seed %" PRIu64
                 ": %s\n"
                 "[bipie_fuzz] replay: bipie_fuzz --mode parse_sql "
                 "--seed %" PRIu64 " --iters 1\n",
                 seed + i, error.c_str(), seed + i);
    break;
  }
  return result;
}

}  // namespace bipie::fuzz
