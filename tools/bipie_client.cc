// bipie_client: an interactive REPL speaking the framed protocol.
//
//   bipie_client [--host H] [--port N] [-e "SQL"]
//
// Reads statements from stdin (or runs the single -e statement and exits):
//
//   SET key = value          apply a session setting delta
//   SELECT ... FROM t ...    run a query, print rows and a stats line
//   EXPLAIN SELECT ...       print the plan
//   \q                       quit
//
// Statements may end with a ';'. Exit status is 0 when every statement
// succeeded, 1 otherwise (so CI can smoke-test end-to-end with -e).

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/client.h"

namespace {

// Trims whitespace and one trailing ';'.
std::string Clean(std::string s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  s = s.substr(b, e - b + 1);
  if (!s.empty() && s.back() == ';') {
    s.pop_back();
    size_t e2 = s.find_last_not_of(" \t\r\n");
    s = e2 == std::string::npos ? "" : s.substr(0, e2 + 1);
  }
  return s;
}

bool StartsWithWord(const std::string& s, const char* word) {
  size_t n = std::strlen(word);
  if (s.size() < n) return false;
  for (size_t i = 0; i < n; ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) != word[i]) {
      return false;
    }
  }
  return s.size() == n || s[n] == ' ' || s[n] == '\t';
}

// "SET name = value" (the '=' optional).
bool ParseSet(const std::string& s, std::string* name, std::string* value) {
  size_t i = 3;  // past "set"
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
  size_t name_start = i;
  while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])) &&
         s[i] != '=') {
    ++i;
  }
  if (i == name_start) return false;
  *name = s.substr(name_start, i - name_start);
  while (i < s.size() && (std::isspace(static_cast<unsigned char>(s[i])) ||
                          s[i] == '=')) {
    ++i;
  }
  if (i >= s.size()) return false;
  *value = s.substr(i);
  return true;
}

int RunStatement(bipie::server::Client& client, const std::string& stmt) {
  if (StartsWithWord(stmt, "set")) {
    std::string name, value;
    if (!ParseSet(stmt, &name, &value)) {
      std::fprintf(stderr, "usage: SET <name> = <value>\n");
      return 1;
    }
    bipie::Status st = client.Set(name, value);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("OK\n");
    return 0;
  }

  bipie::QueryResult result;
  bipie::server::QueryStatsWire stats;
  std::string explain_text;
  bipie::Status st = client.SendQuery(stmt);
  if (st.ok()) st = client.ReadQueryResponse(&result, &stats, &explain_text);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!explain_text.empty()) {
    std::fputs(explain_text.c_str(), stdout);
    if (explain_text.back() != '\n') std::printf("\n");
    return 0;
  }

  for (const std::string& name : result.group_column_names) {
    std::printf("%s\t", name.c_str());
  }
  std::printf("count\tvalues\n");
  for (const bipie::ResultRow& row : result.rows) {
    for (const bipie::GroupValue& g : row.group) {
      if (g.is_string) {
        std::printf("%s\t", g.string_value.c_str());
      } else {
        std::printf("%lld\t", static_cast<long long>(g.int_value));
      }
    }
    std::printf("%llu", static_cast<unsigned long long>(row.count));
    for (int64_t s : row.sums) {
      std::printf("\t%lld", static_cast<long long>(s));
    }
    std::printf("\n");
  }
  std::printf(
      "-- %zu row(s); scanned=%llu selected=%llu queue_wait_ms=%.2f "
      "exec_ms=%.2f peak_mem=%llu%s\n",
      result.rows.size(),
      static_cast<unsigned long long>(stats.rows_scanned),
      static_cast<unsigned long long>(stats.rows_selected),
      static_cast<double>(stats.queue_wait_ns) / 1e6,
      static_cast<double>(stats.exec_ns) / 1e6,
      static_cast<unsigned long long>(stats.peak_memory_bytes),
      stats.used_hash_fallback ? " (hash fallback)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 4555;
  std::string one_shot;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--host") {
      host = next();
    } else if (arg == "--port") {
      port = static_cast<uint16_t>(std::atoi(next()));
    } else if (arg == "-e") {
      one_shot = next();
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  bipie::server::Client client;
  bipie::Status st = client.Connect(host, port);
  if (!st.ok()) {
    std::fprintf(stderr, "connect failed: %s\n", st.ToString().c_str());
    return 1;
  }

  if (!one_shot.empty()) return RunStatement(client, Clean(one_shot));

  int rc = 0;
  std::string line;
  std::fprintf(stderr, "bipie> ");
  char buf[1 << 16];
  while (std::fgets(buf, sizeof(buf), stdin) != nullptr) {
    std::string stmt = Clean(buf);
    if (stmt.empty()) {
      std::fprintf(stderr, "bipie> ");
      continue;
    }
    if (stmt == "\\q" || stmt == "quit" || stmt == "exit") break;
    rc |= RunStatement(client, stmt);
    std::fprintf(stderr, "bipie> ");
  }
  return rc;
}
