#!/usr/bin/env python3
"""Asserts a candidate bench run is within a tolerance of a baseline run.

Usage:
  python3 tools/check_bench_delta.py \
      --baseline BASE1.json [BASE2.json ...] \
      --candidate CAND1.json [CAND2.json ...] \
      [--metric cycles_per_row] [--max-regress-pct 2.0] [--higher-is-better]

All files are BENCH_<name>.json documents written by bench_util.h. When a
side has several files (repeated runs of the same bench), each label's
best value across runs is used — best-of-N on both sides cancels the
scheduler/frequency noise that a single pair of runs cannot. Labels are
matched by name; for each label present on both sides the relative
regression of `--metric` is computed (lower is better by default, e.g.
cycles_per_row; pass --higher-is-better for throughput metrics like qps)
and the check fails if any label regresses by more than the threshold.

The perf-smoke CI job uses this to pin down the observability layer's
zero-cost claim: a default release build (trace sites compiled out) must
stay within 2% of the tracing build with tracing idle, on the scan-heavy
benches. Exits 0 on pass, 1 on regression, 2 on usage/parse errors.
"""
import argparse
import json
import sys


def load_results(paths: list, metric: str, higher_is_better: bool) -> dict:
    """Per-label best value of `metric` across the given run files."""
    best = max if higher_is_better else min
    out = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        for entry in doc.get("results", []):
            label = entry.get("label")
            if label is None or metric not in entry:
                continue
            value = float(entry[metric])
            out[label] = value if label not in out else best(out[label], value)
    if not out:
        sys.exit(f"error: {paths} have no results with metric '{metric}'")
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", nargs="+", required=True)
    parser.add_argument("--candidate", nargs="+", required=True)
    parser.add_argument("--metric", default="cycles_per_row")
    parser.add_argument("--max-regress-pct", type=float, default=2.0)
    parser.add_argument("--higher-is-better", action="store_true",
                        help="metric is a throughput (e.g. qps): a drop "
                             "is the regression direction")
    args = parser.parse_args()

    base = load_results(args.baseline, args.metric, args.higher_is_better)
    cand = load_results(args.candidate, args.metric, args.higher_is_better)
    shared = sorted(set(base) & set(cand))
    if not shared:
        sys.exit("error: no shared labels between baseline and candidate")

    worst = None
    failed = False
    for label in shared:
        b, c = base[label], cand[label]
        # Normalized so a positive delta is always a regression: cost
        # metrics regress upward, throughput metrics regress downward.
        delta_pct = (c - b) / b * 100.0 if b > 0 else 0.0
        if args.higher_is_better:
            delta_pct = -delta_pct
        mark = ""
        if delta_pct > args.max_regress_pct:
            failed = True
            mark = "  << REGRESSION"
        if worst is None or delta_pct > worst[1]:
            worst = (label, delta_pct)
        print(f"{label:50s} {b:10.3f} -> {c:10.3f}  {delta_pct:+6.2f}%{mark}")

    print(f"\ncompared {len(shared)} label(s); worst: {worst[0]} "
          f"({worst[1]:+.2f}%), threshold {args.max_regress_pct:.2f}%")
    if failed:
        print("FAIL: candidate regresses past the threshold")
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
