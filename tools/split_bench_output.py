#!/usr/bin/env python3
"""Splits bench_output.txt into per-binary files under bench_results/.

Usage: python3 tools/split_bench_output.py [bench_output.txt] [bench_results/]
Keeps EXPERIMENTS.md's per-experiment pointers valid after regenerating the
combined output with the loop in the README.
"""
import os
import sys


def main() -> None:
    src = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    out_dir = sys.argv[2] if len(sys.argv) > 2 else "bench_results"
    os.makedirs(out_dir, exist_ok=True)
    current = None
    handle = None
    with open(src) as f:
        for line in f:
            if line.startswith("################ "):
                name = line.strip("#\n ").strip()
                if handle:
                    handle.close()
                current = os.path.join(out_dir, f"{name}.txt")
                handle = open(current, "w")
                continue
            if handle:
                handle.write(line)
    if handle:
        handle.close()
    print(f"split {src} into {out_dir}/")


if __name__ == "__main__":
    main()
