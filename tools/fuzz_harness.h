// Differential correctness harness (the driver behind tools/bipie_fuzz and
// tests/fuzz_driver_test).
//
// BIPie's correctness surface is combinatorial: 3 selection strategies x 6
// aggregation strategies x ISA tiers x encodings x bit widths x selectivity
// x group counts, all of which must compute exactly the answer of the
// generic hash-aggregation engine. The harness generates random tables and
// queries across that whole matrix from a single seed, executes every
// specialized plan, and diffs each result against the oracle. Failures
// shrink greedily to a minimal parameter set and print a replay line that
// reproduces the exact case locally.
//
// Everything is deterministic: a CaseParams value fully determines the
// table, the query, and the plans run, so a CI seed replays bit-identically
// on any machine (modulo the ISA tiers the hardware offers).
#ifndef BIPIE_TOOLS_FUZZ_HARNESS_H_
#define BIPIE_TOOLS_FUZZ_HARNESS_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace bipie::fuzz {

// Every knob of one generated differential case. MakeCaseParams derives all
// fields from a master seed; the shrinker then overrides individual fields
// and re-runs, so generation must depend only on the explicit field values.
struct CaseParams {
  uint64_t seed = 1;
  size_t rows = 6000;
  size_t segment_rows = 2048;
  int group_columns = 1;  // 0..2 grouping columns
  int group_card = 8;     // per-column group cardinality, 1..300 (values
                          // above 255 push the combined count outside the
                          // specialized envelope -> hash fallback path)
  int num_aggs = 2;       // aggregates beyond the implicit count(*)
  int num_filters = 1;    // 0..3 conjunctive filters
  double delete_frac = 0.0;        // fraction of rows deleted
  double target_selectivity = 0.5; // drives numeric filter literal choice
  int wide_bits = 0;      // >0 adds a wide (41..63 bit) bit-packed column
                          // that filters (and sometimes aggregates) touch
  size_t num_threads = 1; // execution model for the extra adaptive plan:
                          // 0 = shared morsel pool, 1 = inline only,
                          // k>1 = legacy per-query threads
  int64_t cancel_after = 0;  // >0 runs a cancellation pass: the context
                             // trips after this many cancellation checks,
                             // and the scan must return kCancelled or the
                             // complete exact result — never a partial one
  double failpoint_prob = 0.0;  // >0 arms the scan/morsel_scratch_alloc
                                // failpoint at this per-morsel probability
                                // (seeded with `seed`): every plan must then
                                // return its complete exact result or a
                                // structured kResourceExhausted — never a
                                // partial aggregate. No-op in builds without
                                // BIPIE_ENABLE_FAILPOINTS.
  double sorted_fraction = 0.0;  // >0 clusters group and RLE value columns
                                 // into runs of ~sorted_fraction * 8192 rows
                                 // (and pins the group columns to integer
                                 // RLE), putting cases inside the run-level
                                 // execution envelope so the forced
                                 // kRunBased plan diffs against the oracle
                                 // on run-shaped data, morsel boundaries
                                 // included
  uint64_t memory_limit = 0;  // >0 runs a memory-governance pass: a context
                              // with this hard limit (bytes) executes per
                              // model, and every run must return the
                              // complete exact result or a structured
                              // kResourceExhausted — never a partial
                              // aggregate, never a crash — with the query
                              // tracker balanced at zero afterwards
  int cost_model = 0;  // 0 = off, 1 = on, 2 = adaptive: >0 adds adaptive
                       // plans that consult the calibrated cost model
                       // (DESIGN.md §17) for strategy and byteslice
                       // admission — model-driven plans must stay
                       // byte-identical to the oracle like every other plan

  // Replay line, e.g. "seed=42 rows=375 segment_rows=128 ...". Parsed back
  // by ParseCaseParams.
  std::string ToString() const;
};

// Derives a full parameter set from a master seed.
CaseParams MakeCaseParams(uint64_t seed);

// Parses a ToString() replay line (space-separated key=value pairs; unknown
// keys are errors). Returns false on malformed input.
bool ParseCaseParams(const std::string& text, CaseParams* out,
                     std::string* error);

// Builds the case and runs the full differential matrix:
//   * the hash-aggregation oracle,
//   * the adaptive plan inline plus (per p.num_threads) on the shared
//     morsel pool or with legacy per-query threads,
//   * every selection x aggregation override combination, plus each
//     selection-only and aggregation-only override,
//   * when p.cancel_after > 0, a cancellation pass per execution model:
//     a context that cancels after p.cancel_after checks must yield
//     kCancelled or the exact oracle result, never a partial one.
// A plan may reject cleanly with kNotSupported (infeasible strategy for the
// shape) or abort with kOverflowRisk (checked path); any other error, or any
// result row differing from the oracle, is a failure. Returns true when the
// case is green; otherwise fills *error with a human-readable diagnosis.
bool RunOneCase(const CaseParams& p, std::string* error);

// Greedily shrinks a failing case: tries field reductions in a fixed order,
// keeping each one that still fails, until a fixed point. Returns the
// minimal failing params (callers should re-run RunOneCase on the result to
// obtain the final error text).
CaseParams Shrink(const CaseParams& p);

struct FuzzResult {
  uint64_t iterations = 0;
  uint64_t failures = 0;
  std::string first_error;    // diagnosis of the first failing case
  CaseParams first_failing;   // shrunk params of the first failing case
};

// Runs seeds [seed, seed + iters); stops early once `budget_seconds` of wall
// clock elapse (0 = no budget). Stops at the first failure (after shrinking
// it). When `verbose`, prints one line per iteration to stderr.
FuzzResult RunFuzz(uint64_t seed, uint64_t iters, double budget_seconds,
                   bool verbose);

// ---------------------------------------------------------------------------
// load_table mode: the untrusted-file boundary.
// ---------------------------------------------------------------------------

struct LoadFuzzResult {
  uint64_t iterations = 0;
  uint64_t failures = 0;
  uint64_t first_failing_seed = 0;  // replay: --mode load_table --seed N
  std::string first_error;
};

// Fuzzes LoadTable: builds one golden table, saves it in both format
// versions, and for each seed applies seeded mutations (byte flips,
// truncations, garbage extension) before loading the mutant. Every mutant
// must either fail with a structured load error or produce a validated
// table that scans end to end — any other status (or any crash, which a
// sanitizer build turns into a process abort) is a failure. Stops at the
// first failing seed.
LoadFuzzResult RunLoadTableFuzz(uint64_t seed, uint64_t iters,
                                double budget_seconds, bool verbose);

// ---------------------------------------------------------------------------
// parse_sql mode: the untrusted-query boundary.
// ---------------------------------------------------------------------------

struct SqlFuzzResult {
  uint64_t iterations = 0;
  uint64_t failures = 0;
  uint64_t first_failing_seed = 0;  // replay: --mode parse_sql --seed N
  std::string first_error;
};

// Fuzzes the SQL frontend (src/sql): each seed mutates a valid statement
// (byte flips, truncation, token splices, slice duplication, raw garbage)
// and feeds it to PreparseQuery and ParseQuery. Every input must either
// parse into a QuerySpec that then executes without internal errors, or be
// rejected with a contextful kInvalidArgument — never any other status,
// never an empty message, never a crash (which a sanitizer build turns into
// a process abort). Stops at the first failing seed.
SqlFuzzResult RunParseSqlFuzz(uint64_t seed, uint64_t iters,
                              double budget_seconds, bool verbose);

}  // namespace bipie::fuzz

#endif  // BIPIE_TOOLS_FUZZ_HARNESS_H_
