// Command-line driver for the differential correctness harness.
//
// Usage:
//   bipie_fuzz [--mode differential|load_table] [--seed N] [--iters N]
//              [--budget-seconds S] [--verbose]
//   bipie_fuzz --replay "seed=42 rows=375 segment_rows=128 ..."
//
// The default (differential) mode runs seeds [seed, seed+iters), stopping
// early when the wall-clock budget (if any) runs out, and exits non-zero at
// the first failing case after shrinking it and printing a --replay line.
// The --replay form re-runs exactly one differential case from a printed
// replay line. load_table mode instead fuzzes the untrusted-file boundary:
// each seed mutates a golden table file and the load must produce a
// structured error or a validated, scannable table — never a crash.
// parse_sql mode fuzzes the untrusted-query boundary the same way: mutated
// SQL text must parse-and-execute cleanly or be rejected with a contextful
// kInvalidArgument — never a crash.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "fuzz_harness.h"

namespace {

void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--mode differential|load_table|parse_sql] "
               "[--seed N] [--iters N] [--budget-seconds S] [--verbose]\n"
               "       %s --replay \"seed=N rows=N ...\"\n",
               argv0, argv0);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  uint64_t iters = 200;
  double budget_seconds = 0.0;
  bool verbose = false;
  std::string mode = "differential";
  std::string replay;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        Usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(need_value("--seed"), nullptr, 10);
    } else if (arg == "--iters") {
      iters = std::strtoull(need_value("--iters"), nullptr, 10);
    } else if (arg == "--budget-seconds") {
      budget_seconds = std::strtod(need_value("--budget-seconds"), nullptr);
    } else if (arg == "--mode") {
      mode = need_value("--mode");
      if (mode != "differential" && mode != "load_table" &&
          mode != "parse_sql") {
        std::fprintf(stderr, "unknown mode: %s\n", mode.c_str());
        Usage(argv[0]);
        return 2;
      }
    } else if (arg == "--replay") {
      replay = need_value("--replay");
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage(argv[0]);
      return 2;
    }
  }

  if (!replay.empty()) {
    bipie::fuzz::CaseParams params;
    std::string error;
    if (!bipie::fuzz::ParseCaseParams(replay, &params, &error)) {
      std::fprintf(stderr, "bad --replay line: %s\n", error.c_str());
      return 2;
    }
    std::fprintf(stderr, "[bipie_fuzz] replaying %s\n",
                 params.ToString().c_str());
    if (bipie::fuzz::RunOneCase(params, &error)) {
      std::fprintf(stderr, "[bipie_fuzz] case is green\n");
      return 0;
    }
    std::fprintf(stderr, "[bipie_fuzz] FAILURE: %s\n", error.c_str());
    return 1;
  }

  if (mode == "parse_sql") {
    const bipie::fuzz::SqlFuzzResult result =
        bipie::fuzz::RunParseSqlFuzz(seed, iters, budget_seconds, verbose);
    std::fprintf(stderr,
                 "[bipie_fuzz] parse_sql: %" PRIu64 " iteration(s), %" PRIu64
                 " failure(s)\n",
                 result.iterations, result.failures);
    return result.failures == 0 ? 0 : 1;
  }

  if (mode == "load_table") {
    const bipie::fuzz::LoadFuzzResult result =
        bipie::fuzz::RunLoadTableFuzz(seed, iters, budget_seconds, verbose);
    std::fprintf(stderr,
                 "[bipie_fuzz] load_table: %" PRIu64 " iteration(s), %" PRIu64
                 " failure(s)\n",
                 result.iterations, result.failures);
    return result.failures == 0 ? 0 : 1;
  }

  const bipie::fuzz::FuzzResult result =
      bipie::fuzz::RunFuzz(seed, iters, budget_seconds, verbose);
  std::fprintf(stderr,
               "[bipie_fuzz] %" PRIu64 " iteration(s), %" PRIu64
               " failure(s)\n",
               result.iterations, result.failures);
  return result.failures == 0 ? 0 : 1;
}
