// bipie_advise: the encoding advisor CLI (DESIGN.md §17).
//
// Scores every encoding candidate for each int/string column of a table —
// estimated encoded size plus predicted roofline scan cycles/row under a
// calibration profile — and prints the advisor's pick next to the
// builder's size-based kAuto pick.
//
// Usage:
//   bipie_advise [options]
//     --table PATH         load a saved bipie table (default: synthetic demo)
//     --column NAME        restrict advice to one column
//     --calibrate          run the micro-calibration pass (measures this
//                          machine) instead of the builtin profile
//     --save-profile PATH  write the profile in use to PATH
//     --profile PATH       load a calibrated profile from PATH (falls back
//                          to builtin with a warning when invalid)
//     --json               emit machine-readable JSON instead of text
//
// Without --table the tool advises on four synthetic demo columns chosen to
// land on different encodings (narrow uniform, sorted runs, wide sparse,
// sequential ramp).
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "cost/calibration.h"
#include "cost/cost_model.h"
#include "obs/json_writer.h"
#include "storage/column_builder.h"
#include "storage/table.h"
#include "storage/table_io.h"

using namespace bipie;  // NOLINT

namespace {

const char* EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kBitPacked:
      return "bit-packed";
    case Encoding::kDictionary:
      return "dictionary";
    case Encoding::kRle:
      return "rle";
    case Encoding::kDelta:
      return "delta";
    case Encoding::kByteSliced:
      return "byte-sliced";
  }
  return "?";
}

struct NamedColumn {
  std::string name;
  ColumnBuilder builder;
};

std::vector<NamedColumn> BuildDemoColumns() {
  std::vector<NamedColumn> cols;
  Rng rng(2024);
  {
    NamedColumn c{"narrow_uniform",
                  ColumnBuilder({"narrow_uniform", ColumnType::kInt64})};
    for (int i = 0; i < 100000; ++i) c.builder.AppendInt64(rng.NextInRange(0, 99));
    cols.push_back(std::move(c));
  }
  {
    NamedColumn c{"sorted_runs", ColumnBuilder({"sorted_runs", ColumnType::kInt64})};
    for (int i = 0; i < 100000; ++i) c.builder.AppendInt64(i / 5000);
    cols.push_back(std::move(c));
  }
  {
    NamedColumn c{"wide_sparse", ColumnBuilder({"wide_sparse", ColumnType::kInt64})};
    for (int i = 0; i < 100000; ++i) {
      c.builder.AppendInt64(rng.NextInRange(0, (int64_t{1} << 40) - 1));
    }
    cols.push_back(std::move(c));
  }
  {
    NamedColumn c{"sequential_ramp",
                  ColumnBuilder({"sequential_ramp", ColumnType::kInt64})};
    for (int i = 0; i < 100000; ++i) {
      c.builder.AppendInt64(int64_t{1} << 30 | i);
    }
    cols.push_back(std::move(c));
  }
  return cols;
}

// Re-accumulates a stored column's logical values into a builder so the
// advisor sees the same value stream the original build did.
std::vector<NamedColumn> ColumnsFromTable(const Table& table,
                                          const std::string& only) {
  std::vector<NamedColumn> cols;
  std::vector<int64_t> buf;
  for (size_t c = 0; c < table.num_columns(); ++c) {
    const ColumnSpec& spec = table.schema()[c];
    if (!only.empty() && spec.name != only) continue;
    NamedColumn named{spec.name, ColumnBuilder({spec.name, spec.type})};
    for (size_t s = 0; s < table.num_segments(); ++s) {
      const EncodedColumn& col = table.segment(s).column(c);
      const size_t n = col.num_rows();
      if (n == 0) continue;
      buf.resize(n);
      col.DecodeInt64(0, n, buf.data());
      if (spec.type == ColumnType::kString) {
        const StringDictionary* dict = col.string_dictionary();
        for (size_t i = 0; i < n; ++i) {
          named.builder.AppendString(
              dict != nullptr ? dict->value(static_cast<uint32_t>(buf[i]))
                              : std::string());
        }
      } else {
        named.builder.AppendInt64Bulk(buf.data(), n);
      }
    }
    cols.push_back(std::move(named));
  }
  return cols;
}

void PrintProfile(const cost::CalibrationProfile& profile) {
  std::printf("profile: %s (isa tier %u)\n",
              profile.calibrated != 0 ? "calibrated" : "builtin",
              profile.isa_tier);
  std::printf("  unpack cycles/row by width bucket: ");
  for (int b = 0; b < cost::kNumWidthBuckets; ++b) {
    std::printf("%s%.2f", b == 0 ? "" : " ", profile.unpack_cycles[b]);
  }
  std::printf("\n  memory bandwidth: %.1f bytes/cycle\n",
              profile.mem_bytes_per_cycle);
}

void PrintAdviceText(const std::string& name, const EncodingAdvice& advice) {
  std::printf("column %s: %zu rows, %zu distinct, %zu runs%s\n", name.c_str(),
              advice.num_rows, advice.distinct, advice.run_count,
              advice.sorted ? ", sorted" : "");
  for (const EncodingCandidate& cand : advice.candidates) {
    if (!cand.feasible) {
      std::printf("  %-12s infeasible\n", EncodingName(cand.encoding));
      continue;
    }
    std::printf("  %-12s %8zu bytes  %6.2f cycles/row%s\n",
                EncodingName(cand.encoding), cand.encoded_bytes,
                cand.scan_cycles_per_row,
                cand.encoding == advice.chosen ? "  <- advised" : "");
  }
  if (advice.chosen != advice.builder_pick) {
    std::printf("  note: size-based auto pick is %s\n",
                EncodingName(advice.builder_pick));
  }
}

void PrintAdviceJson(obs::JsonWriter* w, const std::string& name,
                     const EncodingAdvice& advice) {
  w->BeginObject();
  w->KV("column", name);
  w->KV("rows", advice.num_rows);
  w->KV("distinct", advice.distinct);
  w->KV("runs", advice.run_count);
  w->KV("sorted", advice.sorted);
  w->KV("advised", EncodingName(advice.chosen));
  w->KV("auto_pick", EncodingName(advice.builder_pick));
  w->Key("candidates").BeginArray();
  for (const EncodingCandidate& cand : advice.candidates) {
    w->BeginObject();
    w->KV("encoding", EncodingName(cand.encoding));
    w->KV("feasible", cand.feasible);
    if (cand.feasible) {
      w->KV("bit_width", cand.bit_width);
      w->KV("encoded_bytes", cand.encoded_bytes);
      w->KV("scan_cycles_per_row", cand.scan_cycles_per_row);
    }
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

int main(int argc, char** argv) {
  std::string table_path;
  std::string column;
  std::string profile_path;
  std::string save_path;
  bool calibrate = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--table") {
      table_path = next();
    } else if (arg == "--column") {
      column = next();
    } else if (arg == "--profile") {
      profile_path = next();
    } else if (arg == "--save-profile") {
      save_path = next();
    } else if (arg == "--calibrate") {
      calibrate = true;
    } else if (arg == "--json") {
      json = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    }
  }

  cost::CalibrationProfile profile = cost::BuiltinProfile();
  if (calibrate) {
    profile = cost::Calibrate();
  } else if (!profile_path.empty()) {
    auto loaded = cost::LoadProfile(profile_path);
    if (loaded.ok()) {
      profile = loaded.value();
    } else {
      std::fprintf(stderr, "warning: %s: %s; using builtin profile\n",
                   profile_path.c_str(), loaded.status().ToString().c_str());
    }
  }
  if (!save_path.empty()) {
    const Status saved = cost::SaveProfile(profile, save_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "cannot save profile: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "profile written to %s\n", save_path.c_str());
  }

  std::vector<NamedColumn> cols;
  if (!table_path.empty()) {
    auto loaded = LoadTable(table_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", table_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    cols = ColumnsFromTable(loaded.value(), column);
    if (cols.empty()) {
      std::fprintf(stderr, "no matching columns in %s\n", table_path.c_str());
      return 1;
    }
  } else {
    cols = BuildDemoColumns();
  }

  const cost::CostModel model(profile);
  if (json) {
    obs::JsonWriter w(2);
    w.BeginObject();
    w.KV("profile", profile.calibrated != 0 ? "calibrated" : "builtin");
    w.Key("columns").BeginArray();
    for (const NamedColumn& c : cols) {
      PrintAdviceJson(&w, c.name, c.builder.Advise(model));
    }
    w.EndArray();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  } else {
    PrintProfile(profile);
    for (const NamedColumn& c : cols) {
      PrintAdviceText(c.name, c.builder.Advise(model));
    }
  }
  return 0;
}
