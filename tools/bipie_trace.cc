// bipie_trace: run one query under the observability stack and dump
// everything it produces — the plan explain (text + JSON), the counter
// delta, and a Chrome trace_event JSON file loadable in chrome://tracing
// or Perfetto (DESIGN.md §12).
//
// Usage:
//   bipie_trace [options]
//     --table PATH        load a saved bipie table (default: synthetic demo)
//     --group-by COL      group-by column (repeatable, max 2)
//     --count             add a count(*) aggregate
//     --sum COL           add a sum(COL) aggregate (repeatable)
//     --filter COL,OP,V   add a filter; OP one of lt le gt ge eq ne
//     --threads N         scan parallelism (0 = shared pool; default 0)
//     --out PATH          Chrome trace output (default: bipie_trace.json)
//     --explain-json PATH also write the explain JSON to PATH
//
// Without query flags the tool runs the demo query on the demo table:
//   SELECT city, count(*), sum(amount) FROM orders
//   WHERE amount < 7500 GROUP BY city
//
// Trace spans only record when the library was built with
// -DBIPIE_ENABLE_TRACING=ON; a default build still emits the explain and
// counter sections and writes an empty (but valid) trace file.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/cycle_timer.h"
#include "common/random.h"
#include "core/scan.h"
#include "obs/metrics.h"
#include "obs/plan_explain.h"
#include "obs/trace.h"
#include "storage/table.h"
#include "storage/table_io.h"

using namespace bipie;  // NOLINT

namespace {

Table BuildDemoTable() {
  Table orders({{"city", ColumnType::kString},
                {"amount", ColumnType::kInt64},
                {"items", ColumnType::kInt64}});
  TableAppender appender(&orders, /*segment_rows=*/100000);
  const char* cities[5] = {"Houston", "Seattle", "Boston", "Denver",
                           "Chicago"};
  Rng rng(2018);
  for (int i = 0; i < 400000; ++i) {
    appender.AppendRow(
        {0, rng.NextInRange(100, 9999), rng.NextInRange(1, 40)},
        {cities[rng.NextBounded(5)], "", ""});
  }
  appender.Flush();
  return orders;
}

bool ParseOp(const std::string& s, CompareOp* op) {
  if (s == "lt") *op = CompareOp::kLt;
  else if (s == "le") *op = CompareOp::kLe;
  else if (s == "gt") *op = CompareOp::kGt;
  else if (s == "ge") *op = CompareOp::kGe;
  else if (s == "eq") *op = CompareOp::kEq;
  else if (s == "ne") *op = CompareOp::kNe;
  else return false;
  return true;
}

// "COL,OP,VALUE" — VALUE is an int64 when it parses fully, else a string
// literal (dictionary columns).
bool ParseFilter(const std::string& spec, QuerySpec* query) {
  const size_t c1 = spec.find(',');
  if (c1 == std::string::npos) return false;
  const size_t c2 = spec.find(',', c1 + 1);
  if (c2 == std::string::npos) return false;
  const std::string col = spec.substr(0, c1);
  const std::string op_text = spec.substr(c1 + 1, c2 - c1 - 1);
  const std::string value = spec.substr(c2 + 1);
  CompareOp op;
  if (col.empty() || value.empty() || !ParseOp(op_text, &op)) return false;
  char* end = nullptr;
  const long long as_int = std::strtoll(value.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && end != value.c_str()) {
    query->filters.emplace_back(col, op, static_cast<int64_t>(as_int));
  } else {
    query->filters.emplace_back(col, op, value);
  }
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--table PATH] [--group-by COL] [--count] "
               "[--sum COL] [--filter COL,OP,V] [--threads N] [--out PATH] "
               "[--explain-json PATH]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string table_path;
  std::string out_path = "bipie_trace.json";
  std::string explain_json_path;
  QuerySpec query;
  bool want_count = false;
  size_t num_threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--table" && next(&value)) {
      table_path = value;
    } else if (arg == "--group-by" && next(&value)) {
      query.group_by.push_back(value);
    } else if (arg == "--count") {
      want_count = true;
    } else if (arg == "--sum" && next(&value)) {
      query.aggregates.push_back(AggregateSpec::Sum(value));
    } else if (arg == "--filter" && next(&value)) {
      if (!ParseFilter(value, &query)) {
        std::fprintf(stderr, "bad --filter spec '%s' (want COL,OP,VALUE)\n",
                     value.c_str());
        return 2;
      }
    } else if (arg == "--threads" && next(&value)) {
      num_threads = static_cast<size_t>(std::strtoull(value.c_str(), nullptr,
                                                      10));
    } else if (arg == "--out" && next(&value)) {
      out_path = value;
    } else if (arg == "--explain-json" && next(&value)) {
      explain_json_path = value;
    } else {
      return Usage(argv[0]);
    }
  }
  if (want_count) {
    query.aggregates.insert(query.aggregates.begin(), AggregateSpec::Count());
  }

  // The table: loaded, or the synthetic demo.
  Table table({{"placeholder", ColumnType::kInt64}});
  if (!table_path.empty()) {
    auto loaded = LoadTable(table_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n", table_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    table = std::move(loaded.value());
  } else {
    table = BuildDemoTable();
  }

  // The query: as given, or the demo query.
  if (query.group_by.empty() && query.aggregates.empty()) {
    if (!table_path.empty()) {
      std::fprintf(stderr,
                   "a loaded table needs query flags (--group-by/--sum/...)"
                   "\n");
      return 2;
    }
    query.group_by = {"city"};
    query.aggregates = {AggregateSpec::Count(), AggregateSpec::Sum("amount")};
    query.filters.emplace_back("amount", CompareOp::kLt, int64_t{7500});
  }
  if (query.aggregates.empty()) {
    query.aggregates.push_back(AggregateSpec::Count());
  }

  ScanOptions options;
  options.num_threads = num_threads;
  BIPieScan scan(table, query, options);

  // 1. Plan explain, before any execution.
  auto explain = scan.Explain();
  if (!explain.ok()) {
    std::fprintf(stderr, "explain failed: %s\n",
                 explain.status().ToString().c_str());
    return 1;
  }
  std::fputs(explain.value().ToText().c_str(), stdout);
  if (!explain_json_path.empty()) {
    if (!WriteFile(explain_json_path, explain.value().ToJson() + "\n")) {
      std::fprintf(stderr, "cannot write %s\n", explain_json_path.c_str());
      return 1;
    }
    std::printf("\nexplain json: %s\n", explain_json_path.c_str());
  }

  if (!obs::TracingCompiledIn()) {
    std::fprintf(stderr,
                 "\nnote: trace spans are compiled out in this build; "
                 "rebuild with -DBIPIE_ENABLE_TRACING=ON for a real trace\n");
  }

  // 2. Execute under tracing, bracketed by a counter snapshot.
  const obs::MetricsSnapshot before = obs::SnapshotMetrics();
  obs::StartTracing();
  auto result = scan.Execute();
  obs::StopTracing();
  if (!result.ok()) {
    std::fprintf(stderr, "scan failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("\nresult: %zu groups\n", result.value().rows.size());
  const ScanStats& stats = scan.stats();
  std::printf("stats: %zu segments scanned, %zu eliminated, %zu batches, "
              "%zu rows scanned, %zu selected\n",
              stats.segments_scanned, stats.segments_eliminated, stats.batches,
              stats.rows_scanned, stats.rows_selected);

  // 3. Counter delta for this query alone.
  const obs::MetricsSnapshot delta = obs::MetricsDelta(before);
  std::printf("\ncounters (delta over this query):\n%s",
              obs::MetricsToText(delta).c_str());

  // 4. Chrome trace export.
  const std::vector<obs::TraceEvent> events = obs::CollectTraceEvents();
  if (!WriteFile(out_path, obs::TraceToChromeJson(events, TscHz()))) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("\ntrace: %zu events -> %s", events.size(), out_path.c_str());
  if (obs::TraceDroppedEvents() > 0) {
    std::printf(" (%" PRIu64 " dropped: buffer full)",
                obs::TraceDroppedEvents());
  }
  std::printf("\n");
  return 0;
}
