// bipie_server: the standalone query-service daemon.
//
// Serves a generated TPC-H lineitem table over the framed protocol
// (src/server). SIGTERM / SIGINT trigger a graceful drain: stop accepting,
// cancel queued queries, let running queries flush, dump the server and
// admission counters, exit 0. A second SIGTERM / SIGINT while the drain is
// still running forces an immediate exit with code 3 — an operator (or a
// supervisor's escalation) is never stuck behind a wedged drain.
//
//   bipie_server [--port N] [--rows N] [--max-concurrent N]
//                [--queue-limit N] [--aging-ms N]
//                [--idle-timeout-ms N] [--write-stall-ms N]
//                [--soft-limit-bytes N] [--shed-queue-wait-ms N]
//
// --max-concurrent 0 (default: hardware concurrency) disables the
// admission gate entirely; the priority-banded queue only engages with a
// concurrency cap. --soft-limit-bytes / --shed-queue-wait-ms arm the
// overload shed policy (DESIGN.md §15): low-band queries are rejected with
// kUnavailable while the process is over its soft memory limit or the low
// band's queue delay exceeds the threshold.

#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "server/server.h"
#include "tpch/lineitem.h"

namespace {

volatile std::sig_atomic_t g_shutdown = 0;

void HandleSignal(int) {
  // Second signal while draining: the operator wants out NOW. _exit is
  // async-signal-safe; skip all destructors and report the forced exit.
  if (g_shutdown) _exit(3);
  g_shutdown = 1;
}

uint64_t ParseArg(const char* text, const char* flag) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using bipie::server::Server;
  using bipie::server::ServerOptions;

  ServerOptions options;
  options.port = 4555;
  options.admission.max_concurrent_queries =
      std::thread::hardware_concurrency();
  size_t rows = size_t{1} << 20;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      options.port = static_cast<uint16_t>(ParseArg(next(), "--port"));
    } else if (arg == "--rows") {
      rows = ParseArg(next(), "--rows");
    } else if (arg == "--max-concurrent") {
      options.admission.max_concurrent_queries =
          ParseArg(next(), "--max-concurrent");
    } else if (arg == "--queue-limit") {
      options.admission.max_queued_queries =
          ParseArg(next(), "--queue-limit");
    } else if (arg == "--aging-ms") {
      options.admission.aging_ms = ParseArg(next(), "--aging-ms");
    } else if (arg == "--idle-timeout-ms") {
      options.idle_timeout_ms = ParseArg(next(), "--idle-timeout-ms");
    } else if (arg == "--write-stall-ms") {
      options.write_stall_timeout_ms = ParseArg(next(), "--write-stall-ms");
    } else if (arg == "--soft-limit-bytes") {
      options.soft_memory_limit_bytes =
          static_cast<size_t>(ParseArg(next(), "--soft-limit-bytes"));
    } else if (arg == "--shed-queue-wait-ms") {
      options.shed_queue_wait_ms = ParseArg(next(), "--shed-queue-wait-ms");
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }

  std::fprintf(stderr, "generating lineitem (%zu rows)...\n", rows);
  bipie::LineitemOptions gen;
  gen.num_rows = rows;
  bipie::Table lineitem = bipie::MakeLineitemTable(gen);

  Server server(options);
  server.AddTable("lineitem", &lineitem);
  bipie::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "bipie_server listening on port %u (slots=%zu)\n",
               server.port(), server.admission().limits().max_concurrent_queries);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (!g_shutdown) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::fprintf(stderr, "draining...\n");
  server.Shutdown();

  // Flush the counters so an orchestrator's logs show what this process did.
  bipie::obs::MetricsSnapshot snapshot = bipie::obs::SnapshotMetrics();
  std::string text = bipie::obs::MetricsToText(snapshot);
  std::fputs(text.c_str(), stderr);
  return 0;
}
